#include "planner/Feedback.h"

#include "ir/Instructions.h"
#include "ir/Module.h"
#include "telemetry/Telemetry.h"
#include "verify/CheckMetadata.h"

#include <cstdlib>
#include <map>

using namespace noelle;
using namespace noelle::planner;
namespace telemetry = noelle::telemetry;

namespace {

/// Resolves the plan-entry origin (deterministic header-instruction ID)
/// of a dispatched task function. DOALL/HELIX tasks and DSWP stage tasks
/// carry verify::TaskOriginKey directly; a DSWP pipeline trampoline does
/// not (it spans every stage), so fall back to the origin of the stage
/// tasks it calls — they all clone the same loop.
bool originOf(const nir::Function &F, uint64_t &Out) {
  std::string Origin = F.getMetadata(verify::TaskOriginKey);
  if (Origin.empty()) {
    for (const auto &BB : F.getBlocks())
      for (const auto &I : BB->getInstList()) {
        const auto *Call = nir::dyn_cast<nir::CallInst>(I.get());
        if (!Call)
          continue;
        const nir::Function *Callee = Call->getCalledFunction();
        if (!Callee)
          continue;
        Origin = Callee->getMetadata(verify::TaskOriginKey);
        if (!Origin.empty())
          break;
      }
  }
  if (Origin.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Origin.c_str(), &End, 10);
  return End && *End == '\0' && !Origin.empty();
}

} // namespace

FeedbackResult planner::applyMeasuredSpeedups(
    ProgramPlan &Plan, const nir::Module &M,
    const std::vector<nir::DispatchRecord> &Records,
    const FeedbackOptions &Opts) {
  // Join records to origins. A loop may dispatch many times (outer
  // invocations), so accumulate sequential and parallel time per origin
  // before forming the ratio — exactly how simulatedTime folds regions.
  struct Acc {
    uint64_t Seq = 0;
    uint64_t Par = 0;
  };
  std::map<uint64_t, Acc> ByOrigin;
  std::map<std::string, const nir::Function *> FnCache;
  for (const nir::DispatchRecord &R : Records) {
    if (R.TaskName.empty())
      continue;
    auto It = FnCache.find(R.TaskName);
    if (It == FnCache.end())
      It = FnCache.emplace(R.TaskName, M.getFunction(R.TaskName)).first;
    const nir::Function *F = It->second;
    if (!F)
      continue;
    uint64_t Origin = 0;
    if (!originOf(*F, Origin))
      continue;
    Acc &A = ByOrigin[Origin];
    A.Seq += R.TotalTaskInstructions;
    uint64_t Region =
        std::max(R.MaxTaskInstructions + R.MaxTaskSyncOps * Opts.SyncCost,
                 R.TotalSegmentInstructions);
    Region += R.NumTasks * Opts.SpawnCostPerTask;
    A.Par += Region;
  }

  FeedbackResult Res;
  for (PlanEntry &E : Plan.Entries) {
    auto It = ByOrigin.find(E.HeaderInstID);
    if (It == ByOrigin.end() || It->second.Par == 0)
      continue;
    E.MeasuredMilli = static_cast<int64_t>(
        It->second.Seq * 1000 / It->second.Par);
    if (E.MeasuredMilli == 0)
      E.MeasuredMilli = 1; // measured-but-tiny still round-trips
    ++Res.EntriesMeasured;
    telemetry::count(telemetry::Counter::PlanMeasured);
    if (E.SpeedupMilli > 0 &&
        static_cast<double>(E.MeasuredMilli) <
            Opts.ShortfallRatio * static_cast<double>(E.SpeedupMilli)) {
      ++Res.Shortfalls;
      telemetry::count(telemetry::Counter::PlanShortfall);
    }
  }
  return Res;
}
