//===----------------------------------------------------------------------===//
///
/// \file
/// Serializable whole-program parallelization plans. A ProgramPlan names,
/// per hot loop, the technique the planner picked, its worker count and
/// chunk grain, and the modeled speedup that justified the choice. Plans
/// are keyed by the module's structural content hash and identified per
/// loop by the deterministic instruction ID of the loop header's first
/// instruction (ir/IDs.h) — both survive printing, parsing, and
/// annotation, so a plan can be embedded as module metadata next to the
/// PDG cache, audited by `noelle-check --plan`, and applied one-shot by
/// `noelle-parallelize`.
///
/// Wire format (one record per line, deterministic, so a
/// serialize→deserialize→serialize round trip is byte-identical):
///
///   plan v1
///   hash <16 hex digits>
///   loop fn=<name> header=<id> loop=<id>
///        kind=<doall|helix|dswp|spec-doall>
///        workers=<n> chunk=<n> parent=<entry index|-1> speedup=<milli>
///        [misspec=<milli>] [premises=<src>:<dst>,...]
///
/// `parent` links a nested entry (DOALL inside a DSWP stage) to the
/// index of its enclosing DSWP entry; top-level entries carry -1.
/// `misspec` and `premises` appear only on speculative entries (and
/// only when nonzero/nonempty), so plans written before speculation
/// existed round-trip byte-identically.
///
//===----------------------------------------------------------------------===//

#ifndef PLANNER_PLAN_H
#define PLANNER_PLAN_H

#include "xforms/ParallelizationTechnique.h"

#include <string>
#include <vector>

namespace noelle {
namespace planner {

/// Module metadata key a plan is embedded under.
inline constexpr const char *PlanEmbedKey = "noelle.plan.v1";

/// One loop's slice of the program plan.
struct PlanEntry {
  std::string FunctionName;  ///< pre-transform host function
  uint64_t HeaderInstID = 0; ///< deterministic ID of the header's first
                             ///< instruction (stable loop identity)
  unsigned LoopID = 0;       ///< preorder loop ID (diagnostic only)
  TechniqueKind Kind = TechniqueKind::DOALL;
  unsigned Workers = 1;
  unsigned ChunkGrain = 1;
  /// Index of the enclosing DSWP entry for a nested DOALL, else -1.
  int Parent = -1;
  /// Modeled speedup in milli-units (2310 = 2.31x) — integral so the
  /// wire format round-trips byte-identically.
  int64_t SpeedupMilli = 0;
  /// Measured speedup in milli-units, written back by the planner
  /// feedback pass (planner/Feedback.h) from DispatchRecords of an
  /// actual run. 0 = never measured; the wire format omits the field
  /// then, so unmeasured plans round-trip byte-identically with plans
  /// written before this field existed.
  int64_t MeasuredMilli = 0;
  /// Speculative DOALL: modeled misspeculation probability in
  /// milli-units (rule of succession over the memory-dependence
  /// profile's observed invocations). 0 on static entries; the wire
  /// format omits the field then.
  int64_t MisspecMilli = 0;
  /// Speculative DOALL: the loop-carried memory dependences the plan
  /// admits on never-manifested profile evidence, as (srcID, dstID)
  /// deterministic-instruction-ID pairs in sorted order. noelle-check
  /// --speculative re-derives these from the module and its embedded
  /// profile and rejects any drift. Empty on static entries.
  std::vector<std::pair<uint64_t, uint64_t>> Premises;

  bool operator==(const PlanEntry &O) const {
    return FunctionName == O.FunctionName &&
           HeaderInstID == O.HeaderInstID && LoopID == O.LoopID &&
           Kind == O.Kind && Workers == O.Workers &&
           ChunkGrain == O.ChunkGrain && Parent == O.Parent &&
           SpeedupMilli == O.SpeedupMilli &&
           MeasuredMilli == O.MeasuredMilli &&
           MisspecMilli == O.MisspecMilli && Premises == O.Premises;
  }
};

/// A whole-program parallelization plan.
struct ProgramPlan {
  /// Content hash of the module the plan was computed for (0 = unbound).
  uint64_t ModuleHash = 0;
  std::vector<PlanEntry> Entries;

  bool operator==(const ProgramPlan &O) const {
    return ModuleHash == O.ModuleHash && Entries == O.Entries;
  }

  std::string serialize() const;
  static bool deserialize(const std::string &Text, ProgramPlan &Out,
                          std::string &Err);

  /// Stores the plan as module metadata (PlanEmbedKey). The module's
  /// content hash is metadata-agnostic, so embedding does not invalidate
  /// the plan's own hash binding (nor the PDG cache).
  void embed(nir::Module &M) const;

  /// Loads an embedded plan. Returns false when absent or malformed.
  static bool fromModule(const nir::Module &M, ProgramPlan &Out,
                         std::string &Err);

  /// Removes an embedded plan.
  static void clean(nir::Module &M);
};

} // namespace planner
} // namespace noelle

#endif // PLANNER_PLAN_H
