//===----------------------------------------------------------------------===//
///
/// \file
/// Planner feedback: closes the loop between a plan's modeled speedups
/// and what a real run delivered. DispatchRecords carry the name of the
/// dispatched task function; task functions carry the deterministic ID
/// of the loop they came from (verify::TaskOriginKey); plan entries are
/// keyed by that same ID. Joining the three yields, per plan entry, the
/// measured speedup under the Figure-5 performance model, written back
/// into PlanEntry::MeasuredMilli so a re-serialized plan records both
/// the estimate and the observation.
///
/// Entries whose measurement falls below the shortfall threshold (the
/// plan promised more than it delivered) are flagged through the
/// telemetry counter planner.feedback.speedup_shortfall, giving the
/// planner suite a machine-checkable regression signal.
///
//===----------------------------------------------------------------------===//

#ifndef PLANNER_FEEDBACK_H
#define PLANNER_FEEDBACK_H

#include "interp/Interpreter.h"
#include "planner/Plan.h"

#include <vector>

namespace noelle {
namespace planner {

/// Outcome of one feedback pass.
struct FeedbackResult {
  /// Plan entries that at least one dispatch record mapped onto.
  unsigned EntriesMeasured = 0;
  /// Measured entries whose speedup fell below
  /// ShortfallRatio * estimate.
  unsigned Shortfalls = 0;
};

/// Knobs for the measurement; defaults mirror bench/BenchUtils.h
/// PerfModel so measured and modeled numbers live in the same units.
struct FeedbackOptions {
  uint64_t SpawnCostPerTask = 500;
  uint64_t SyncCost = 20;
  /// Measured/estimated ratio below which an entry is a shortfall.
  double ShortfallRatio = 0.8;
};

/// Writes measured speedups from \p Records into \p Plan (module \p M is
/// the post-transform module the records were produced by — its task
/// functions resolve record task names to plan-entry origins). Counters
/// planner.feedback.entries_measured / .speedup_shortfall are bumped per
/// affected entry. Records whose task cannot be mapped to an entry are
/// ignored. Returns what was measured and flagged.
FeedbackResult applyMeasuredSpeedups(
    ProgramPlan &Plan, const nir::Module &M,
    const std::vector<nir::DispatchRecord> &Records,
    const FeedbackOptions &Opts = {});

} // namespace planner
} // namespace noelle

#endif // PLANNER_FEEDBACK_H
