#include "planner/Planner.h"

#include "ir/IDs.h"
#include "noelle/MemDepProfiler.h"
#include "verify/CheckMetadata.h"
#include "xforms/DOALL.h"
#include "xforms/DSWP.h"
#include "xforms/HELIX.h"
#include "xforms/SpecDOALL.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

using namespace noelle;
using namespace noelle::planner;

namespace {

bool isTaskFunction(const nir::Function &F) {
  return F.getMetadata("noelle.task") == "true";
}

/// The plan's loop identity: the deterministic ID of the header's first
/// instruction. False when the module carries no IDs.
bool headerInstID(const nir::LoopStructure &LS, uint64_t &Out) {
  const auto &Insts = LS.getHeader()->getInstList();
  if (Insts.empty())
    return false;
  std::string ID = Insts.front()->getMetadata(nir::InstIDKey);
  if (ID.empty())
    return false;
  Out = std::strtoull(ID.c_str(), nullptr, 10);
  return true;
}

bool moduleHasInstIDs(const nir::Module &M) {
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        if (I->hasMetadata(nir::InstIDKey))
          return true;
  return false;
}

} // namespace

std::unique_ptr<ParallelizationTechnique>
Planner::makeTechnique(TechniqueKind K) {
  switch (K) {
  case TechniqueKind::DOALL: {
    DOALLOptions O;
    O.NumCores = Opts.MaxWorkers;
    return std::make_unique<DOALL>(N, O);
  }
  case TechniqueKind::HELIX: {
    HELIXOptions O;
    O.NumCores = Opts.MaxWorkers;
    O.MinimumEstimatedSpeedup = 0; // the planner gates on estimate()
    return std::make_unique<HELIX>(N, O);
  }
  case TechniqueKind::DSWP: {
    DSWPOptions O;
    O.NumCores = Opts.MaxWorkers;
    O.QueueCapacity = Opts.QueueCapacity;
    O.MinimumStageWeight = 0; // the planner gates on estimate()
    return std::make_unique<DSWP>(N, O);
  }
  case TechniqueKind::SpecDOALL: {
    DOALLOptions O;
    O.NumCores = Opts.MaxWorkers;
    return std::make_unique<SpecDOALL>(N, O);
  }
  }
  return nullptr;
}

ProfileData *Planner::getProfiles() {
  if (!Opts.UseProfiles)
    return nullptr;
  if (ProfileData *P = N.getProfiles(false))
    return P;
  // Collecting a profile runs @main; modules without one (library
  // fragments, single-kernel test modules) plan from static defaults.
  nir::Function *Main = N.getModule().getFunction("main");
  if (Main && !Main->isDeclaration())
    return N.getProfiles(true);
  return nullptr;
}

ProgramPlan Planner::plan() {
  nir::Module &M = N.getModule();
  // Loop identities need deterministic IDs; respect existing ones (a
  // verify snapshot may already reference them).
  if (!moduleHasInstIDs(M))
    nir::assignDeterministicIDs(M);

  ProfileData *Prof = getProfiles();

  std::vector<std::unique_ptr<ParallelizationTechnique>> Techniques;
  Techniques.push_back(makeTechnique(TechniqueKind::DOALL));
  Techniques.push_back(makeTechnique(TechniqueKind::HELIX));
  Techniques.push_back(makeTechnique(TechniqueKind::DSWP));
  if (Opts.EnableSpeculation)
    Techniques.push_back(makeTechnique(TechniqueKind::SpecDOALL));

  // The memory-dependence profile backs the misspeculation-probability
  // term of speculative candidates: a loop observed across many
  // invocations without the dependence manifesting earns a lower
  // modeled rollback charge (rule of succession, 1/(n+2)).
  MemDepProfile MemDep;
  bool HasMemDep = false;
  if (Opts.EnableSpeculation) {
    std::string MemDepErr;
    HasMemDep = MemDepProfile::fromModule(M, MemDep, MemDepErr);
  }

  ProgramPlan P;
  P.ModuleHash = M.getContentHash();

  // Loops already claimed by an entry; descendants of a claimed loop
  // are skipped, except the direct DOALL-inside-DSWP nested case.
  std::map<const nir::LoopStructure *, size_t> Chosen;

  for (LoopContent *LC : N.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    if (isTaskFunction(*LS.getFunction()))
      continue;

    const nir::LoopStructure *ClaimedAncestor = nullptr;
    for (nir::LoopStructure *A = LS.getParentLoop(); A;
         A = A->getParentLoop())
      if (Chosen.count(A)) {
        ClaimedAncestor = A;
        break;
      }

    if (ClaimedAncestor) {
      // Nested parallelism: a DOALL loop immediately inside a planned
      // DSWP loop executes within one pipeline stage's task, where its
      // iterations can still fan out over the remaining cores.
      if (!Opts.EnableNested || ClaimedAncestor != LS.getParentLoop())
        continue;
      size_t ParentIdx = Chosen.at(ClaimedAncestor);
      if (P.Entries[ParentIdx].Kind != TechniqueKind::DSWP)
        continue;
      if (Prof && Prof->getLoopInvocations(LS) == 0)
        continue;
      Legality L = Techniques[0]->applicable(*LC);
      CostQuery Q = Model.queryFor(*LC, Prof);
      PlanChoice C;
      if (!Model.choose(*Techniques[0], L, Q, Opts.MaxWorkers, C))
        continue;
      if (C.Cost.speedup() < Opts.MinimumSpeedup)
        continue;
      uint64_t HID = 0;
      if (!headerInstID(LS, HID))
        continue;
      PlanEntry E;
      E.FunctionName = LS.getFunction()->getName();
      E.HeaderInstID = HID;
      E.LoopID = LS.getID();
      E.Kind = TechniqueKind::DOALL;
      E.Workers = C.Plan.Workers;
      E.ChunkGrain = C.Plan.ChunkGrain;
      E.Parent = static_cast<int>(ParentIdx);
      E.SpeedupMilli = std::llround(C.Cost.speedup() * 1000.0);
      Chosen[&LS] = P.Entries.size();
      P.Entries.push_back(std::move(E));
      continue;
    }

    // Evidence gates: never-executed loops have no profile-backed trip
    // count, and cold loops cannot repay transformation risk.
    if (Prof) {
      if (Prof->getLoopInvocations(LS) == 0)
        continue;
      if (Prof->getLoopHotness(LS) < Opts.MinimumHotness)
        continue;
    }

    uint64_t HID = 0;
    if (!headerInstID(LS, HID))
      continue;

    CostQuery Q = Model.queryFor(*LC, Prof);
    double SpecProb = 0.0;
    if (HasMemDep && MemDep.coversLoop(HID))
      SpecProb =
          1.0 / static_cast<double>(MemDep.loopInvocations(HID) + 2);

    bool Any = false;
    PlanChoice Best;
    TechniqueKind BestKind = TechniqueKind::DOALL;
    Legality BestL;
    for (auto &T : Techniques) {
      Legality L = T->applicable(*LC);
      CostQuery TQ = Q;
      if (T->getKind() == TechniqueKind::SpecDOALL)
        TQ.MisspecProbability = SpecProb;
      PlanChoice C;
      if (!Model.choose(*T, L, TQ, Opts.MaxWorkers, C))
        continue;
      // Strict comparison: ties resolve to the earlier technique
      // (DOALL before HELIX before DSWP before SpecDOALL — cheaper
      // machinery first, speculation last).
      if (!Any || C.Cost.ParallelTime < Best.Cost.ParallelTime) {
        Best = C;
        BestKind = T->getKind();
        BestL = std::move(L);
        Any = true;
      }
    }
    if (!Any || Best.Cost.speedup() < Opts.MinimumSpeedup)
      continue;
    PlanEntry E;
    E.FunctionName = LS.getFunction()->getName();
    E.HeaderInstID = HID;
    E.LoopID = LS.getID();
    E.Kind = BestKind;
    E.Workers = Best.Plan.Workers;
    E.ChunkGrain = BestKind == TechniqueKind::DOALL ||
                           BestKind == TechniqueKind::SpecDOALL
                       ? Best.Plan.ChunkGrain
                       : 1;
    E.Parent = -1;
    E.SpeedupMilli = std::llround(Best.Cost.speedup() * 1000.0);
    if (BestKind == TechniqueKind::SpecDOALL) {
      E.MisspecMilli = std::llround(SpecProb * 1000.0);
      E.Premises = BestL.SpecPremises;
      std::sort(E.Premises.begin(), E.Premises.end());
    }
    Chosen[&LS] = P.Entries.size();
    P.Entries.push_back(std::move(E));
  }
  return P;
}

namespace {

/// Finds the (non-task) loop a top-level plan entry names. Fresh
/// enumeration per call: applying earlier entries invalidates bundles.
LoopContent *findPlannedLoop(Noelle &N, const PlanEntry &E) {
  for (LoopContent *LC : N.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    if (isTaskFunction(*LS.getFunction()))
      continue;
    if (LS.getFunction()->getName() != E.FunctionName)
      continue;
    uint64_t HID = 0;
    if (headerInstID(LS, HID) && HID == E.HeaderInstID)
      return LC;
  }
  return nullptr;
}

/// Finds the clone of a nested entry's loop inside its parent
/// pipeline's stage tasks: cloned instructions carry CheckOrigKey with
/// the original's deterministic ID. Requires the loop to survive in
/// exactly one stage — replicated or dismembered inner loops are not
/// safely parallelizable post hoc.
LoopContent *findNestedLoop(Noelle &N, const PlanEntry &E) {
  std::string Want = std::to_string(E.HeaderInstID);
  LoopContent *Found = nullptr;
  unsigned Matches = 0;
  for (LoopContent *LC : N.getLoopContents()) {
    nir::LoopStructure &LS = LC->getLoopStructure();
    nir::Function *F = LS.getFunction();
    if (F->getMetadata(verify::TaskKindKey) != "dswp-stage")
      continue;
    bool Hit = false;
    for (const auto &I : LS.getHeader()->getInstList())
      if (I->getMetadata(verify::CheckOrigKey) == Want) {
        Hit = true;
        break;
      }
    if (Hit) {
      ++Matches;
      Found = LC;
    }
  }
  return Matches == 1 ? Found : nullptr;
}

/// Stage-fn clones carry CheckOrigKey instead of deterministic IDs, so
/// a task generated from one gets no TaskOriginKey from
/// cloneLoopIntoTask; patch it from the plan entry, which knows the
/// original loop's identity.
void patchNestedTaskOrigin(nir::Module &M, const std::string &StageFn,
                           const PlanEntry &E) {
  for (const auto &F : M.getFunctions()) {
    if (F->getMetadata(verify::TaskKindKey) != "doall")
      continue;
    if (F->getMetadata(verify::TaskSrcFnKey) != StageFn)
      continue;
    if (!F->getMetadata(verify::TaskOriginKey).empty())
      continue;
    F->setMetadata(verify::TaskOriginKey,
                   std::to_string(E.HeaderInstID));
  }
}

} // namespace

std::vector<Decision> Planner::apply(const ProgramPlan &P) {
  nir::Module &M = N.getModule();
  std::vector<Decision> Decisions;

  if (P.ModuleHash != 0 && P.ModuleHash != M.getContentHash()) {
    for (const PlanEntry &E : P.Entries) {
      Decision D;
      D.FunctionName = E.FunctionName;
      D.LoopID = E.LoopID;
      D.Kind = E.Kind;
      D.Reason = "plan hash does not match module";
      Decisions.push_back(std::move(D));
    }
    return Decisions;
  }

  std::vector<bool> Applied(P.Entries.size(), false);
  for (size_t I = 0; I < P.Entries.size(); ++I) {
    const PlanEntry &E = P.Entries[I];
    Decision D;
    D.FunctionName = E.FunctionName;
    D.LoopID = E.LoopID;
    D.Kind = E.Kind;

    LoopContent *LC = nullptr;
    std::string StageFnName;
    if (E.Parent < 0) {
      LC = findPlannedLoop(N, E);
      if (!LC)
        D.Reason = "loop named by plan not found";
    } else if (static_cast<size_t>(E.Parent) >= I ||
               !Applied[static_cast<size_t>(E.Parent)]) {
      D.Reason = "parent pipeline entry did not apply";
    } else {
      LC = findNestedLoop(N, E);
      if (LC)
        StageFnName = LC->getLoopStructure().getFunction()->getName();
      else
        D.Reason = "nested loop not found in exactly one pipeline stage";
    }
    if (!LC) {
      Decisions.push_back(std::move(D));
      continue;
    }

    std::unique_ptr<ParallelizationTechnique> T = makeTechnique(E.Kind);
    LoopPlan LP;
    LP.Kind = E.Kind;
    LP.Workers = std::max(1u, E.Workers);
    LP.ChunkGrain = std::max(1u, E.ChunkGrain);
    bool OK = T->apply(*LC, LP, D);
    if (OK && E.Parent >= 0)
      patchNestedTaskOrigin(M, StageFnName, E);
    Applied[I] = OK;
    Decisions.push_back(std::move(D));
  }
  return Decisions;
}

std::vector<Decision>
Planner::applyEverywhere(ParallelizationTechnique &T) {
  Noelle &N = T.getNoelle();
  std::vector<Decision> Decisions;
  // Keyed by (function, header position) rather than loop ID: IDs are
  // preorder indices that shift as transforms erase sibling loops.
  std::set<std::pair<std::string, unsigned>> Attempted;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    ProfileData *Prof =
        T.minimumHotness() > 0 ? N.getProfiles(false) : nullptr;
    for (LoopContent *LC : N.getLoopContents()) {
      nir::LoopStructure &LS = LC->getLoopStructure();
      if (isTaskFunction(*LS.getFunction()))
        continue;
      unsigned HeaderPos = 0, Pos = 0;
      for (auto &BB : LS.getFunction()->getBlocks()) {
        if (BB.get() == LS.getHeader())
          HeaderPos = Pos;
        ++Pos;
      }
      auto Key = std::make_pair(LS.getFunction()->getName(), HeaderPos);
      if (!Attempted.insert(Key).second)
        continue;

      Decision D;
      D.FunctionName = Key.first;
      D.LoopID = LS.getID();
      D.Kind = T.getKind();
      if (Prof && Prof->getLoopHotness(LS) < T.minimumHotness()) {
        D.Reason = "not hot enough";
        Decisions.push_back(std::move(D));
        continue;
      }
      Legality L = T.applicable(*LC);
      if (!L) {
        D.Reason = L.Reason;
        Decisions.push_back(std::move(D));
        continue;
      }
      D.NumSequentialSegments = L.NumSegments;
      if (!T.profitable(*LC, L, D.Reason)) {
        Decisions.push_back(std::move(D));
        continue;
      }
      bool OK = T.apply(*LC, T.defaultPlan(), D);
      Decisions.push_back(std::move(D));
      if (OK) {
        // The transform invalidated analyses; restart enumeration.
        Progress = true;
        break;
      }
    }
  }
  return Decisions;
}
