#include "planner/CostModel.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace noelle;
using namespace noelle::planner;

namespace {

/// Minimal scan for `"key": <number>` in a flat JSON object — the
/// shape bench_runtime writes. Returns false when the key is absent.
bool readNumberField(const std::string &Text, const std::string &Key,
                     double &Out) {
  std::string Needle = "\"" + Key + "\"";
  size_t At = Text.find(Needle);
  if (At == std::string::npos)
    return false;
  At = Text.find(':', At + Needle.size());
  if (At == std::string::npos)
    return false;
  return std::sscanf(Text.c_str() + At + 1, " %lf", &Out) == 1;
}

} // namespace

bool noelle::planner::loadMeasuredOverheads(const std::string &Path,
                                            CostOverheads &O,
                                            std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  double DispatchNs = 0, Mips = 0;
  if (!readNumberField(Text, "dispatch_ns_per_region_pool_static",
                       DispatchNs)) {
    Err = "'" + Path + "' lacks dispatch_ns_per_region_pool_static";
    return false;
  }
  if (!readNumberField(Text, "steady_state_mips", Mips) || Mips <= 0) {
    Err = "'" + Path + "' lacks a positive steady_state_mips";
    return false;
  }
  // ns -> instructions at the measured interpreter throughput
  // (MIPS = instructions per microsecond), then per task: the bench's
  // dispatch regions run 4 tasks each.
  double RegionInstrs = DispatchNs * Mips / 1000.0;
  O.SpawnCostPerTask = RegionInstrs / 4.0;
  if (O.SpawnCostPerTask < 1.0)
    O.SpawnCostPerTask = 1.0;
  return true;
}

CostQuery CostModel::queryFor(LoopContent &LC, ProfileData *Prof) const {
  CostQuery Q;
  Q.SpawnCostPerTask = Overheads.SpawnCostPerTask;
  Q.SyncCost = Overheads.SyncCost;
  if (Prof) {
    nir::LoopStructure &LS = LC.getLoopStructure();
    uint64_t Inv = Prof->getLoopInvocations(LS);
    if (Inv > 0) {
      Q.TripCount = Prof->getLoopAverageIterations(LS);
      Q.Invocations = static_cast<double>(Inv);

      // Legality weights count each body instruction once, but blocks
      // inside nested loops run once per inner trip. Recover the true
      // per-iteration work from the profile's block counts.
      uint64_t StaticBody = 0;
      double DynWork = 0, DynRetired = 0;
      for (nir::BasicBlock *BB : LS.getBlocks()) {
        uint64_t N = 0;
        for (const auto &I : BB->getInstList())
          if (!nir::isa<nir::PhiInst>(I.get()) && !I->isTerminator())
            ++N;
        StaticBody += N;
        double Count = static_cast<double>(Prof->getBlockCount(BB));
        DynWork += Count * static_cast<double>(N);
        DynRetired += Count *
                      static_cast<double>(BB->getInstList().size());
      }
      double TotalIters =
          static_cast<double>(Prof->getLoopTotalIterations(LS));
      if (StaticBody > 0 && DynWork > 0 && TotalIters > 0) {
        Q.BodyScale = DynWork / (TotalIters *
                                 static_cast<double>(StaticBody));
        // Same ratio with phis and terminators priced in: what the
        // interpreter actually retires per iteration, the unit the
        // measured spawn/sync overheads share.
        Q.RetiredScale = DynRetired /
                         (TotalIters * static_cast<double>(StaticBody));
      }
    }
  }
  return Q;
}

bool CostModel::choose(const ParallelizationTechnique &T,
                       const Legality &L, const CostQuery &Q,
                       unsigned MaxWorkers, PlanChoice &Out) const {
  if (!L)
    return false;
  bool Any = false;
  for (unsigned W = 1; W <= std::max(1u, MaxWorkers); ++W) {
    LoopPlan P;
    P.Kind = T.getKind();
    P.Workers = W;
    // DOALL's chunked dispatch: coarsen the grain once the worker
    // count is large enough for counter traffic to matter. Other
    // techniques ignore the grain.
    P.ChunkGrain = std::max(1u, W / 8);
    TechniqueCost C = T.estimate(L, P, Q);
    if (!Any || C.ParallelTime < Out.Cost.ParallelTime) {
      Out.Plan = P;
      Out.Cost = C;
      Any = true;
    }
  }
  return Any;
}
