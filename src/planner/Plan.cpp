#include "planner/Plan.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace noelle;
using namespace noelle::planner;

std::string ProgramPlan::serialize() const {
  std::string Out = "plan v1\n";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "hash %016" PRIx64 "\n", ModuleHash);
  Out += Buf;
  for (const PlanEntry &E : Entries) {
    Out += "loop fn=" + E.FunctionName;
    std::snprintf(Buf, sizeof(Buf), " header=%" PRIu64, E.HeaderInstID);
    Out += Buf;
    Out += " loop=" + std::to_string(E.LoopID);
    Out += std::string(" kind=") + techniqueName(E.Kind);
    Out += " workers=" + std::to_string(E.Workers);
    Out += " chunk=" + std::to_string(E.ChunkGrain);
    Out += " parent=" + std::to_string(E.Parent);
    Out += " speedup=" + std::to_string(E.SpeedupMilli);
    if (E.MeasuredMilli != 0)
      Out += " measured=" + std::to_string(E.MeasuredMilli);
    if (E.MisspecMilli != 0)
      Out += " misspec=" + std::to_string(E.MisspecMilli);
    if (!E.Premises.empty()) {
      Out += " premises=";
      for (size_t I = 0; I < E.Premises.size(); ++I) {
        if (I)
          Out += ",";
        Out += std::to_string(E.Premises[I].first) + ":" +
               std::to_string(E.Premises[I].second);
      }
    }
    Out += "\n";
  }
  return Out;
}

namespace {

/// Splits "key=value"; returns false on malformed tokens.
bool splitKV(const std::string &Tok, std::string &Key, std::string &Val) {
  size_t Eq = Tok.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Key = Tok.substr(0, Eq);
  Val = Tok.substr(Eq + 1);
  return true;
}

} // namespace

bool ProgramPlan::deserialize(const std::string &Text, ProgramPlan &Out,
                              std::string &Err) {
  Out = ProgramPlan();
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  bool SawHeader = false, SawHash = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Word;
    LS >> Word;
    if (Word == "plan") {
      std::string Version;
      LS >> Version;
      if (Version != "v1") {
        Err = "line " + std::to_string(LineNo) +
              ": unsupported plan version '" + Version + "'";
        return false;
      }
      SawHeader = true;
      continue;
    }
    if (Word == "hash") {
      std::string Hex;
      LS >> Hex;
      uint64_t H = 0;
      if (Hex.empty() ||
          std::sscanf(Hex.c_str(), "%" SCNx64, &H) != 1) {
        Err = "line " + std::to_string(LineNo) + ": malformed hash";
        return false;
      }
      Out.ModuleHash = H;
      SawHash = true;
      continue;
    }
    if (Word != "loop") {
      Err = "line " + std::to_string(LineNo) + ": unknown record '" +
            Word + "'";
      return false;
    }
    PlanEntry E;
    bool SawFn = false, SawHdr = false, SawKind = false;
    std::string Tok;
    while (LS >> Tok) {
      std::string Key, Val;
      if (!splitKV(Tok, Key, Val)) {
        Err = "line " + std::to_string(LineNo) + ": malformed token '" +
              Tok + "'";
        return false;
      }
      try {
        if (Key == "fn") {
          E.FunctionName = Val;
          SawFn = true;
        } else if (Key == "header") {
          E.HeaderInstID = std::stoull(Val);
          SawHdr = true;
        } else if (Key == "loop") {
          E.LoopID = static_cast<unsigned>(std::stoul(Val));
        } else if (Key == "kind") {
          if (!techniqueFromName(Val, E.Kind)) {
            Err = "line " + std::to_string(LineNo) +
                  ": unknown technique '" + Val + "'";
            return false;
          }
          SawKind = true;
        } else if (Key == "workers") {
          E.Workers = static_cast<unsigned>(std::stoul(Val));
        } else if (Key == "chunk") {
          E.ChunkGrain = static_cast<unsigned>(std::stoul(Val));
        } else if (Key == "parent") {
          E.Parent = std::stoi(Val);
        } else if (Key == "speedup") {
          E.SpeedupMilli = std::stoll(Val);
        } else if (Key == "measured") {
          E.MeasuredMilli = std::stoll(Val);
        } else if (Key == "misspec") {
          E.MisspecMilli = std::stoll(Val);
        } else if (Key == "premises") {
          size_t Pos = 0;
          while (Pos < Val.size()) {
            size_t Comma = Val.find(',', Pos);
            std::string Pair = Val.substr(
                Pos, Comma == std::string::npos ? Comma : Comma - Pos);
            size_t Colon = Pair.find(':');
            if (Colon == std::string::npos || Colon == 0 ||
                Colon + 1 == Pair.size()) {
              Err = "line " + std::to_string(LineNo) +
                    ": malformed premise '" + Pair + "'";
              return false;
            }
            E.Premises.push_back({std::stoull(Pair.substr(0, Colon)),
                                  std::stoull(Pair.substr(Colon + 1))});
            Pos = Comma == std::string::npos ? Val.size() : Comma + 1;
          }
        } else {
          Err = "line " + std::to_string(LineNo) + ": unknown key '" +
                Key + "'";
          return false;
        }
      } catch (const std::exception &) {
        Err = "line " + std::to_string(LineNo) + ": bad number in '" +
              Tok + "'";
        return false;
      }
    }
    if (!SawFn || !SawHdr || !SawKind) {
      Err = "line " + std::to_string(LineNo) +
            ": loop record missing fn/header/kind";
      return false;
    }
    Out.Entries.push_back(std::move(E));
  }
  if (!SawHeader) {
    Err = "missing 'plan v1' header";
    return false;
  }
  if (!SawHash) {
    Err = "missing 'hash' record";
    return false;
  }
  return true;
}

void ProgramPlan::embed(nir::Module &M) const {
  M.setModuleMetadata(PlanEmbedKey, serialize());
}

bool ProgramPlan::fromModule(const nir::Module &M, ProgramPlan &Out,
                             std::string &Err) {
  if (!M.hasModuleMetadata(PlanEmbedKey)) {
    Err = "module carries no embedded plan";
    return false;
  }
  return deserialize(M.getModuleMetadata(PlanEmbedKey), Out, Err);
}

void ProgramPlan::clean(nir::Module &M) {
  M.removeModuleMetadata(PlanEmbedKey);
}
