//===----------------------------------------------------------------------===//
///
/// \file
/// The planner: automatic parallelization-strategy orchestration. For
/// every hot loop of the program it enumerates the techniques that are
/// legally applicable through the unified ParallelizationTechnique
/// interface, costs each candidate worker count from profiler data and
/// measured runtime overheads, and emits a whole-program ProgramPlan —
/// including nested parallelism (a DOALL loop inside a DSWP stage) and
/// per-loop worker-count / chunk-grain selection. Plans serialize,
/// embed as module metadata next to the PDG cache, audit under
/// `noelle-check --plan`, and apply one-shot via apply() (what
/// `noelle-parallelize` drives).
///
/// The planner also implements the technique-forced whole-module sweep
/// (applyEverywhere) that ParallelizationTechnique::run() delegates to
/// — the legacy per-tool behavior figure 5's DOALL/HELIX/DSWP columns
/// are built on.
///
//===----------------------------------------------------------------------===//

#ifndef PLANNER_PLANNER_H
#define PLANNER_PLANNER_H

#include "planner/CostModel.h"
#include "planner/Plan.h"
#include "xforms/ParallelizationTechnique.h"

namespace noelle {
namespace planner {

struct PlannerOptions {
  /// Worker-count search ceiling (and NumCores handed to techniques).
  unsigned MaxWorkers = 4;
  /// Loops whose best modeled speedup falls below this stay sequential.
  double MinimumSpeedup = 1.02;
  /// Loops cooler than this fraction of total executed instructions are
  /// not planned (0 = plan everything the profile has seen run).
  double MinimumHotness = 0.0;
  /// Use embedded profiles — collecting them by running @main when the
  /// module has one and carries none. When false, the cost model falls
  /// back to its static defaults for every loop.
  bool UseProfiles = true;
  /// Consider DOALL on loops nested inside a planned DSWP stage.
  bool EnableNested = true;
  /// Enumerate speculative DOALL on loops the embedded memory-
  /// dependence profile (noelle.memdep.v1) covers. Off by default:
  /// speculation changes the failure model (misspeculation triggers a
  /// sequential re-execution), so drivers opt in explicitly
  /// (`noelle-parallelize --speculate`). Without an embedded profile
  /// the candidate set is empty regardless.
  bool EnableSpeculation = false;
  /// DSWP inter-stage queue capacity.
  unsigned QueueCapacity = 128;
  CostOverheads Overheads;
};

/// Per-module strategy orchestrator. Obtained from the facade via
/// Noelle::getPlanner(); standalone construction is fine too.
class Planner {
public:
  explicit Planner(Noelle &N, PlannerOptions Opts = {})
      : N(N), Opts(Opts), Model(Opts.Overheads) {}

  Noelle &getNoelle() const { return N; }
  const PlannerOptions &getOptions() const { return Opts; }
  const CostModel &getCostModel() const { return Model; }

  /// Computes a whole-program plan for the facade's module without
  /// mutating its code. Ensures deterministic instruction IDs exist
  /// (assigning them is the only metadata side effect; the content
  /// hash ignores metadata). Deterministic: same module + same profile
  /// => byte-identical serialized plan.
  ProgramPlan plan();

  /// Applies \p P to the module, one decision per plan entry. Entries
  /// whose loops cannot be found or transformed fail individually
  /// (Decision::Reason) without aborting the rest. Nested entries are
  /// applied after their parent pipeline, by locating the cloned loop
  /// inside the parent's stage task.
  std::vector<Decision> apply(const ProgramPlan &P);

  /// plan() then apply() — the one-shot driver path.
  std::vector<Decision> planAndApply() { return apply(plan()); }

  /// The technique-forced sweep behind ParallelizationTechnique::run():
  /// applies \p T to every eligible loop of its module (outermost
  /// first, skipping generated task functions and anything inside an
  /// already-parallelized loop), restarting enumeration after each
  /// successful transform. Honors the technique's hotness floor and
  /// profitability gate.
  static std::vector<Decision> applyEverywhere(ParallelizationTechnique &T);

private:
  /// Technique instances under planner conventions: thresholds
  /// neutralized (the planner gates on modeled speedup, not per-tool
  /// heuristics) so an emitted plan entry always re-applies.
  std::unique_ptr<ParallelizationTechnique> makeTechnique(TechniqueKind K);

  /// Profile lookup per the options (collect-if-missing only when the
  /// module has a @main to run).
  ProfileData *getProfiles();

  Noelle &N;
  PlannerOptions Opts;
  CostModel Model;
};

} // namespace planner
} // namespace noelle

#endif // PLANNER_PLANNER_H
