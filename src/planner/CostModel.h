//===----------------------------------------------------------------------===//
///
/// \file
/// The planner's cost model: turns profile data (trip counts,
/// invocation counts) and measured runtime overheads (dispatch/park
/// cost, gate/queue cost) into CostQuery inputs, and searches a
/// technique's worker-count axis for the cheapest modeled plan. The
/// per-technique time formulas themselves live with the techniques
/// (ParallelizationTechnique::estimate); the model only owns their
/// shared inputs and the search.
///
//===----------------------------------------------------------------------===//

#ifndef PLANNER_COSTMODEL_H
#define PLANNER_COSTMODEL_H

#include "xforms/ParallelizationTechnique.h"

#include <string>

namespace noelle {
namespace planner {

/// Per-event overheads in interpreter-instruction units — the currency
/// of the figure-5 performance model. Defaults mirror
/// bench/BenchUtils.h PerfModel; loadMeasuredOverheads replaces them
/// with values derived from a BENCH_runtime.json measurement.
struct CostOverheads {
  double SpawnCostPerTask = 500; ///< pool dispatch + park, per task
  double SyncCost = 20;          ///< one gate wait/signal or queue op
};

/// Derives overheads from a BENCH_runtime.json file written by
/// bench_runtime: converts the measured per-region pool dispatch
/// latency into instruction units via the measured interpreter
/// throughput (instructions = ns * MIPS / 1000), divided across the
/// bench's 4 tasks per region. Returns false (with \p Err) when the
/// file is missing or lacks the required fields; \p O is untouched
/// then. SyncCost has no direct measurement and keeps its prior value.
bool loadMeasuredOverheads(const std::string &Path, CostOverheads &O,
                           std::string &Err);

/// One candidate the search produced: a concrete plan and its modeled
/// cost.
struct PlanChoice {
  LoopPlan Plan;
  TechniqueCost Cost;
};

class CostModel {
public:
  explicit CostModel(CostOverheads Overheads = {})
      : Overheads(Overheads) {}

  const CostOverheads &getOverheads() const { return Overheads; }

  /// Builds the cost inputs for one loop. With a profile, trip count
  /// and invocations come from PRO; without one, the defaults
  /// (TripCount 128, one invocation) stand in. Loops the profile never
  /// saw keep the defaults too — the planner separately skips them.
  CostQuery queryFor(LoopContent &LC, ProfileData *Prof) const;

  /// Searches worker counts 1..MaxWorkers for the cheapest modeled
  /// plan of technique \p T on a loop whose applicable() returned
  /// \p L. Ties resolve to the smallest worker count (the technique
  /// estimates are unimodal in W: parallel time falls until the spawn/
  /// sync knee, then never falls again). Returns false when \p L is
  /// not legal.
  bool choose(const ParallelizationTechnique &T, const Legality &L,
              const CostQuery &Q, unsigned MaxWorkers,
              PlanChoice &Out) const;

private:
  CostOverheads Overheads;
};

} // namespace planner
} // namespace noelle

#endif // PLANNER_COSTMODEL_H
