#include "analysis/AliasAnalysis.h"

#include "ir/Instructions.h"

#include <algorithm>

using namespace nir;

//===----------------------------------------------------------------------===//
// Shared ModRef logic.
//===----------------------------------------------------------------------===//

bool nir::memoryAccessOf(const Instruction *I, MemAccess &Out) {
  switch (I->getKind()) {
  case Value::Kind::Load: {
    const auto *L = cast<LoadInst>(I);
    Out = {L->getPointerOperand(), L->getType()->getStoreSize(), false};
    return true;
  }
  case Value::Kind::Store: {
    const auto *S = cast<StoreInst>(I);
    Out = {S->getPointerOperand(),
           S->getValueOperand()->getType()->getStoreSize(), true};
    return true;
  }
  case Value::Kind::VLoad: {
    const auto *L = cast<VLoadInst>(I);
    Out = {L->getPointerOperand(), L->getAccessSize(), false};
    return true;
  }
  case Value::Kind::VStore: {
    const auto *S = cast<VStoreInst>(I);
    Out = {S->getPointerOperand(), S->getAccessSize(), true};
    return true;
  }
  default:
    return false;
  }
}

ModRefResult AliasAnalysis::getModRef(const Instruction *I,
                                      const Value *Ptr) {
  return getModRef(I, Ptr, 8);
}

ModRefResult AliasAnalysis::getModRef(const Instruction *I, const Value *Ptr,
                                      uint64_t Size) {
  MemAccess A;
  if (memoryAccessOf(I, A))
    return alias(A.Ptr, accessGranule(A.Size), Ptr, accessGranule(Size)) ==
                   AliasResult::NoAlias
               ? ModRefResult::NoModRef
               : (A.IsWrite ? ModRefResult::Mod : ModRefResult::Ref);
  if (isa<CallInst>(I)) {
    if (I->getMetadata("noelle.pure") == "true")
      return ModRefResult::NoModRef;
    if (I->getMetadata("noelle.readonly") == "true")
      return ModRefResult::Ref;
    return ModRefResult::ModRef;
  }
  return ModRefResult::NoModRef;
}

//===----------------------------------------------------------------------===//
// NoAliasAnalysis
//===----------------------------------------------------------------------===//

AliasResult NoAliasAnalysis::alias(const Value *P1, const Value *P2) {
  if (P1 == P2)
    return AliasResult::MustAlias;
  return AliasResult::MayAlias;
}

//===----------------------------------------------------------------------===//
// BasicAliasAnalysis
//===----------------------------------------------------------------------===//

const Value *BasicAliasAnalysis::getUnderlyingObject(const Value *P,
                                                     int64_t &Offset,
                                                     bool &OffsetKnown) {
  Offset = 0;
  OffsetKnown = true;
  while (true) {
    if (const auto *G = dyn_cast<GEPInst>(P)) {
      if (const auto *CI = dyn_cast<ConstantInt>(G->getIndex()))
        Offset += CI->getValue() * static_cast<int64_t>(G->getScale());
      else
        OffsetKnown = false;
      P = G->getBase();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(P)) {
      if (C->getOp() == CastInst::Op::Bitcast) {
        P = C->getValueOperand();
        continue;
      }
    }
    return P;
  }
}

bool BasicAliasAnalysis::isNonEscapingLocal(const Value *Obj) {
  if (!isa<AllocaInst>(Obj))
    return false;
  // The address escapes if it is stored anywhere or passed to a call.
  // Walk the transitive gep/cast closure of the address.
  std::vector<const Value *> Work = {Obj};
  std::set<const Value *> Visited;
  while (!Work.empty()) {
    const Value *V = Work.back();
    Work.pop_back();
    if (!Visited.insert(V).second)
      continue;
    for (const auto &U : V->uses()) {
      const User *Usr = U.TheUser;
      if (const auto *S = dyn_cast<StoreInst>(Usr)) {
        if (S->getValueOperand() == V)
          return false; // Address itself is stored.
        continue;       // Storing through the address is fine.
      }
      if (isa<CallInst>(Usr))
        return false;
      if (isa<GEPInst>(Usr) || isa<CastInst>(Usr) || isa<PhiInst>(Usr) ||
          isa<SelectInst>(Usr))
        Work.push_back(cast<Value>(Usr));
      // Loads, cmps etc. do not leak the address.
    }
  }
  return true;
}

AliasResult BasicAliasAnalysis::alias(const Value *P1, const Value *P2) {
  return alias(P1, 8, P2, 8);
}

AliasResult BasicAliasAnalysis::alias(const Value *P1, uint64_t S1,
                                      const Value *P2, uint64_t S2) {
  if (P1 == P2)
    return S1 == S2 ? AliasResult::MustAlias : AliasResult::MayAlias;

  int64_t Off1 = 0, Off2 = 0;
  bool Known1 = false, Known2 = false;
  const Value *Obj1 = getUnderlyingObject(P1, Off1, Known1);
  const Value *Obj2 = getUnderlyingObject(P2, Off2, Known2);

  auto IsIdentifiedObject = [](const Value *V) {
    return isa<AllocaInst>(V) || isa<GlobalVariable>(V);
  };

  if (Obj1 == Obj2) {
    if (Known1 && Known2) {
      if (Off1 == Off2)
        return S1 == S2 ? AliasResult::MustAlias : AliasResult::MayAlias;
      // Disjoint constant ranges off the same object cannot overlap; the
      // extents matter now that vector accesses reach past one granule.
      if (Off1 + static_cast<int64_t>(S1) <= Off2 ||
          Off2 + static_cast<int64_t>(S2) <= Off1)
        return AliasResult::NoAlias;
      return AliasResult::MayAlias;
    }
    return AliasResult::MayAlias;
  }

  // Two distinct identified objects never overlap.
  if (IsIdentifiedObject(Obj1) && IsIdentifiedObject(Obj2))
    return AliasResult::NoAlias;

  // A non-escaping alloca cannot alias pointers born elsewhere.
  if ((IsIdentifiedObject(Obj1) && isNonEscapingLocal(Obj1)) ||
      (IsIdentifiedObject(Obj2) && isNonEscapingLocal(Obj2)))
    return AliasResult::NoAlias;

  return AliasResult::MayAlias;
}

//===----------------------------------------------------------------------===//
// AndersenAliasAnalysis
//===----------------------------------------------------------------------===//

namespace {

bool isAllocationCall(const CallInst *C) {
  const Function *F = C->getCalledFunction();
  return F && (F->getName() == "malloc" || F->getName() == "calloc" ||
               F->getName() == "noelle_malloc");
}

bool isPointerish(const Value *V) {
  return V->getType()->isPointer() || V->getType()->isFunction();
}

} // namespace

AndersenAliasAnalysis::AndersenAliasAnalysis(Module &M) : M(M) {
  // Seed address-of constraints.
  for (const auto &G : M.getGlobals())
    PointsTo[G.get()].insert(G.get());
  for (const auto &F : M.getFunctions()) {
    PointsTo[F.get()].insert(F.get());
    if (!F->isDeclaration())
      addConstraintEdgesForFunction(*F);
  }
  solve();
}

void AndersenAliasAnalysis::addConstraintEdgesForFunction(Function &F) {
  for (const auto &BB : F.getBlocks()) {
    for (const auto &IPtr : BB->getInstList()) {
      Instruction *I = IPtr.get();
      switch (I->getKind()) {
      case Value::Kind::Alloca:
        PointsTo[I].insert(I);
        break;
      case Value::Kind::GEP:
        // Field-insensitive: the result aliases the base object.
        CopyEdges[cast<GEPInst>(I)->getBase()].insert(I);
        break;
      case Value::Kind::Cast: {
        auto *C = cast<CastInst>(I);
        if (isPointerish(C) && isPointerish(C->getValueOperand()))
          CopyEdges[C->getValueOperand()].insert(I);
        break;
      }
      case Value::Kind::Phi: {
        auto *P = cast<PhiInst>(I);
        if (isPointerish(P))
          for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K)
            CopyEdges[P->getIncomingValue(K)].insert(I);
        break;
      }
      case Value::Kind::Select: {
        auto *S = cast<SelectInst>(I);
        if (isPointerish(S)) {
          CopyEdges[S->getTrueValue()].insert(I);
          CopyEdges[S->getFalseValue()].insert(I);
        }
        break;
      }
      case Value::Kind::Load:
        if (isPointerish(I))
          LoadCons.push_back({cast<LoadInst>(I)->getPointerOperand(), I});
        break;
      case Value::Kind::Store: {
        auto *S = cast<StoreInst>(I);
        if (isPointerish(S->getValueOperand()))
          StoreCons.push_back(
              {S->getPointerOperand(), S->getValueOperand()});
        break;
      }
      case Value::Kind::Call: {
        auto *C = cast<CallInst>(I);
        if (isAllocationCall(C)) {
          PointsTo[I].insert(I); // The call site is the abstract object.
          break;
        }
        if (Function *Callee = C->getCalledFunction()) {
          if (!Callee->isDeclaration()) {
            for (unsigned A = 0; A < C->getNumArgs() &&
                                 A < Callee->getNumArgs();
                 ++A)
              if (isPointerish(C->getArg(A)))
                CopyEdges[C->getArg(A)].insert(Callee->getArg(A));
            if (isPointerish(C))
              for (const auto &CBB : Callee->getBlocks())
                if (auto *R = dyn_cast_or_null<RetInst>(CBB->getTerminator()))
                  if (R->hasReturnValue())
                    CopyEdges[R->getReturnValue()].insert(I);
          }
          // External callees: returned pointers are fresh objects.
          if (Callee->isDeclaration() && isPointerish(I))
            PointsTo[I].insert(I);
          break;
        }
        // Indirect call: bind against every arity-compatible function
        // whose address is taken somewhere in the module. This is the
        // sound closure Andersen refines as it runs (re-running solve
        // after binding everything keeps the implementation simple).
        for (const auto &Cand : M.getFunctions()) {
          if (Cand->isDeclaration())
            continue;
          if (Cand->getNumArgs() != C->getNumArgs())
            continue;
          // Conservative: bind args and returns through a may-edge guarded
          // by the points-to of the callee operand at solve time. We
          // over-approximate by binding all candidates here; the call
          // graph consumer intersects with the points-to set.
          for (unsigned A = 0; A < C->getNumArgs(); ++A)
            if (isPointerish(C->getArg(A)))
              CopyEdges[C->getArg(A)].insert(Cand->getArg(A));
          if (isPointerish(C))
            for (const auto &CBB : Cand->getBlocks())
              if (auto *R = dyn_cast_or_null<RetInst>(CBB->getTerminator()))
                if (R->hasReturnValue())
                  CopyEdges[R->getReturnValue()].insert(I);
        }
        break;
      }
      default:
        break;
      }
    }
  }
}

void AndersenAliasAnalysis::solve() {
  bool Changed = true;
  auto Propagate = [&](const std::set<const Value *> &Src,
                       std::set<const Value *> &Dst) {
    size_t Before = Dst.size();
    Dst.insert(Src.begin(), Src.end());
    return Dst.size() != Before;
  };

  while (Changed) {
    Changed = false;
    for (auto &[Src, Dsts] : CopyEdges) {
      auto It = PointsTo.find(Src);
      if (It == PointsTo.end())
        continue;
      for (const Value *Dst : Dsts)
        Changed |= Propagate(It->second, PointsTo[Dst]);
    }
    for (auto &[Ptr, Dst] : LoadCons) {
      auto It = PointsTo.find(Ptr);
      if (It == PointsTo.end())
        continue;
      for (const Value *Obj : It->second)
        Changed |= Propagate(Contents[Obj], PointsTo[Dst]);
    }
    for (auto &[Ptr, Src] : StoreCons) {
      auto ItP = PointsTo.find(Ptr);
      auto ItS = PointsTo.find(Src);
      if (ItP == PointsTo.end() || ItS == PointsTo.end())
        continue;
      for (const Value *Obj : ItP->second)
        Changed |= Propagate(ItS->second, Contents[Obj]);
    }
  }
}

const std::set<const Value *> &
AndersenAliasAnalysis::getPointsTo(const Value *P) const {
  auto It = PointsTo.find(P);
  return It == PointsTo.end() ? EmptySet : It->second;
}

AliasResult AndersenAliasAnalysis::alias(const Value *P1, const Value *P2) {
  return alias(P1, 8, P2, 8);
}

AliasResult AndersenAliasAnalysis::alias(const Value *P1, uint64_t S1,
                                         const Value *P2, uint64_t S2) {
  if (P1 == P2)
    return S1 == S2 ? AliasResult::MustAlias : AliasResult::MayAlias;

  // Resolve through gep chains first for field-sensitivity on constant
  // offsets off the same object (Andersen alone is field-insensitive).
  int64_t Off1 = 0, Off2 = 0;
  bool Known1 = false, Known2 = false;
  const Value *O1 = P1;
  const Value *O2 = P2;
  {
    // Local copy of the underlying-object walk (kept simple here).
    auto Walk = [](const Value *P, int64_t &Off, bool &Known) {
      Off = 0;
      Known = true;
      while (true) {
        if (const auto *G = dyn_cast<GEPInst>(P)) {
          if (const auto *CI = dyn_cast<ConstantInt>(G->getIndex()))
            Off += CI->getValue() * static_cast<int64_t>(G->getScale());
          else
            Known = false;
          P = G->getBase();
          continue;
        }
        return P;
      }
    };
    O1 = Walk(P1, Off1, Known1);
    O2 = Walk(P2, Off2, Known2);
  }

  const auto &PT1 = getPointsTo(O1);
  const auto &PT2 = getPointsTo(O2);
  if (PT1.empty() || PT2.empty())
    return AliasResult::MayAlias; // Unknown pointer provenance.

  std::vector<const Value *> Inter;
  std::set_intersection(PT1.begin(), PT1.end(), PT2.begin(), PT2.end(),
                        std::back_inserter(Inter));
  if (Inter.empty())
    return AliasResult::NoAlias;

  // Same unique object: disjoint constant ranges cannot overlap. Access
  // extents are honored so superword accesses are handled soundly.
  if (PT1.size() == 1 && PT2.size() == 1 && *PT1.begin() == *PT2.begin() &&
      Known1 && Known2) {
    if (Off1 == Off2)
      return S1 == S2 ? AliasResult::MustAlias : AliasResult::MayAlias;
    if (Off1 + static_cast<int64_t>(S1) <= Off2 ||
        Off2 + static_cast<int64_t>(S2) <= Off1)
      return AliasResult::NoAlias;
  }
  return AliasResult::MayAlias;
}

std::vector<Function *>
AndersenAliasAnalysis::getIndirectCallees(const CallInst *Call) const {
  std::vector<Function *> Out;
  for (const Value *Obj : getPointsTo(Call->getCalleeOperand())) {
    auto *F = const_cast<Function *>(dyn_cast<Function>(Obj));
    if (F && F->getNumArgs() == Call->getNumArgs())
      Out.push_back(F);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Factory
//===----------------------------------------------------------------------===//

std::unique_ptr<AliasAnalysis> nir::createAliasAnalysis(const std::string &Name,
                                                        Module &M) {
  if (Name == "none")
    return std::make_unique<NoAliasAnalysis>();
  if (Name == "basic" || Name == "llvm")
    return std::make_unique<BasicAliasAnalysis>();
  if (Name == "andersen" || Name == "noelle")
    return std::make_unique<AndersenAliasAnalysis>(M);
  assert(false && "unknown alias analysis name");
  return std::make_unique<NoAliasAnalysis>();
}
