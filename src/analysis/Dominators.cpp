#include "analysis/Dominators.h"

#include "analysis/CFG.h"
#include "ir/Instructions.h"

#include <algorithm>
#include <functional>

using namespace nir;

//===----------------------------------------------------------------------===//
// DominatorTree
//===----------------------------------------------------------------------===//

DominatorTree::DominatorTree(Function &F) : F(F) {
  auto RPO = reversePostOrder(F);
  for (unsigned I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  if (RPO.empty())
    return;

  BasicBlock *Entry = RPO.front();
  IDom[Entry] = Entry; // Temporarily self, fixed to null at the end.

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPOIndex.at(A) > RPOIndex.at(B))
        A = IDom.at(A);
      while (RPOIndex.at(B) > RPOIndex.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!RPOIndex.count(Pred) || !IDom.count(Pred))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }

  // Dominance frontiers (Cooper et al.).
  for (BasicBlock *BB : RPO) {
    auto Preds = BB->predecessors();
    // Keep only reachable predecessors.
    Preds.erase(std::remove_if(Preds.begin(), Preds.end(),
                               [&](BasicBlock *P) {
                                 return !RPOIndex.count(P);
                               }),
                Preds.end());
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *Pred : Preds) {
      BasicBlock *Runner = Pred;
      while (Runner != IDom.at(BB)) {
        Frontier[Runner].insert(BB);
        Runner = IDom.at(Runner);
      }
    }
  }

  IDom[Entry] = nullptr;
}

BasicBlock *DominatorTree::getIDom(BasicBlock *BB) const {
  auto It = IDom.find(BB);
  return It == IDom.end() ? nullptr : It->second;
}

bool DominatorTree::dominates(BasicBlock *A, BasicBlock *B) const {
  if (!RPOIndex.count(A) || !RPOIndex.count(B))
    return false;
  while (B) {
    if (A == B)
      return true;
    B = getIDom(B);
  }
  return false;
}

bool DominatorTree::dominates(const Instruction *A,
                              const Instruction *B) const {
  BasicBlock *ABB = A->getParent();
  BasicBlock *BBB = B->getParent();
  assert(ABB && BBB && "dominance query on unlinked instructions");
  if (ABB != BBB)
    return strictlyDominates(ABB, BBB);
  if (isa<PhiInst>(A) && !isa<PhiInst>(B))
    return true;
  if (!isa<PhiInst>(A) && isa<PhiInst>(B))
    return false;
  for (const auto &I : ABB->getInstList()) {
    if (I.get() == A)
      return true;
    if (I.get() == B)
      return false;
  }
  return false;
}

std::vector<BasicBlock *> DominatorTree::getChildren(BasicBlock *BB) const {
  std::vector<BasicBlock *> Out;
  for (const auto &[Child, Parent] : IDom)
    if (Parent == BB)
      Out.push_back(Child);
  return Out;
}

const std::set<BasicBlock *> &
DominatorTree::getDominanceFrontier(BasicBlock *BB) const {
  auto It = Frontier.find(BB);
  return It == Frontier.end() ? EmptyFrontier : It->second;
}

//===----------------------------------------------------------------------===//
// PostDominatorTree
//===----------------------------------------------------------------------===//

PostDominatorTree::PostDominatorTree(Function &F) {
  // Post-order over the reversed CFG, starting from every exit block.
  std::vector<BasicBlock *> Exits;
  for (auto &BB : F.getBlocks())
    if (BB->successors().empty())
      Exits.push_back(BB.get());

  // Reverse-CFG reverse post-order via iterative DFS from the virtual sink
  // (i.e. from all exits).
  std::vector<BasicBlock *> Order; // post-order on reverse CFG
  std::set<BasicBlock *> Visited;
  std::function<void(BasicBlock *)> Visit = [&](BasicBlock *BB) {
    if (!Visited.insert(BB).second)
      return;
    for (BasicBlock *Pred : BB->predecessors())
      Visit(Pred);
    Order.push_back(BB);
  };
  for (BasicBlock *E : Exits)
    Visit(E);
  std::reverse(Order.begin(), Order.end()); // now RPO on reverse CFG

  std::map<BasicBlock *, unsigned> Index;
  for (unsigned I = 0; I < Order.size(); ++I)
    Index[Order[I]] = I;
  for (BasicBlock *BB : Order)
    Known.insert(BB);

  // The virtual sink is represented by null; exits' IPDom is the sink.
  std::map<BasicBlock *, BasicBlock *> Doms;
  for (BasicBlock *E : Exits)
    Doms[E] = E; // temporarily self (roots of the forest under the sink)

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) -> BasicBlock * {
    // null means the virtual sink, which is the ancestor of everything.
    if (!A || !B)
      return nullptr;
    while (A != B) {
      while (Index.at(A) > Index.at(B)) {
        BasicBlock *Next = Doms.at(A);
        if (Next == A)
          return nullptr; // reached a root: join is the sink
        A = Next;
      }
      while (Index.at(B) > Index.at(A)) {
        BasicBlock *Next = Doms.at(B);
        if (Next == B)
          return nullptr;
        B = Next;
      }
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Order) {
      if (Doms.count(BB) && Doms[BB] == BB)
        continue; // exit roots keep the sink as parent
      BasicBlock *NewDom = nullptr;
      bool First = true;
      bool AnyProcessed = false;
      for (BasicBlock *Succ : BB->successors()) {
        if (!Doms.count(Succ))
          continue;
        AnyProcessed = true;
        if (First) {
          NewDom = Succ;
          First = false;
        } else {
          NewDom = Intersect(NewDom, Succ);
        }
      }
      if (!AnyProcessed)
        continue;
      auto It = Doms.find(BB);
      if (It == Doms.end() || It->second != NewDom) {
        Doms[BB] = NewDom ? NewDom : BB; // self marks "sink parent"... but
        // only exits may be roots; a null join means the sink, encoded
        // distinctly below.
        if (!NewDom)
          Doms[BB] = BB;
        Changed = true;
      }
    }
  }

  for (auto &[BB, D] : Doms)
    IPDom[BB] = (D == BB) ? nullptr : D;
}

BasicBlock *PostDominatorTree::getIPDom(BasicBlock *BB) const {
  auto It = IPDom.find(BB);
  return It == IPDom.end() ? nullptr : It->second;
}

bool PostDominatorTree::postDominates(BasicBlock *A, BasicBlock *B) const {
  if (!Known.count(A) || !Known.count(B))
    return false;
  BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    Cur = getIPDom(Cur);
  }
  return false;
}
