#include "analysis/LoopInfo.h"

#include "analysis/CFG.h"

#include <algorithm>
#include <functional>

using namespace nir;

uint64_t LoopStructure::getNumInstructions() const {
  uint64_t N = 0;
  for (const auto *BB : Blocks)
    N += BB->size();
  return N;
}

std::vector<Instruction *> LoopStructure::getInstructions() const {
  std::vector<Instruction *> Out;
  for (auto *BB : Blocks)
    for (const auto &I : BB->getInstList())
      Out.push_back(I.get());
  return Out;
}

bool LoopStructure::isDoWhileForm() const {
  for (auto *Latch : Latches)
    if (std::find(ExitingBlocks.begin(), ExitingBlocks.end(), Latch) !=
        ExitingBlocks.end())
      return true;
  return false;
}

bool LoopStructure::isWhileForm() const {
  return std::find(ExitingBlocks.begin(), ExitingBlocks.end(), Header) !=
         ExitingBlocks.end();
}

LoopInfo::LoopInfo(Function &F, const DominatorTree &DT) {
  // Find back edges T -> H (H dominates T) and group them per header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> HeaderToLatches;
  for (BasicBlock *BB : reversePostOrder(F))
    for (BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB))
        HeaderToLatches[Succ].push_back(BB);

  // Build each loop's body: reverse reachability from latches up to the
  // header.
  for (auto &[Header, Latches] : HeaderToLatches) {
    auto L = std::make_unique<LoopStructure>();
    L->Header = Header;
    L->Latches = Latches;
    L->BlockSet.insert(Header);
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->BlockSet.insert(BB).second)
        continue;
      for (BasicBlock *Pred : BB->predecessors())
        if (DT.isReachableFromEntry(Pred))
          Work.push_back(Pred);
    }
    // Ordered blocks: header first, then the rest in function order.
    L->Blocks.push_back(Header);
    for (auto &BB : F.getBlocks())
      if (BB.get() != Header && L->BlockSet.count(BB.get()))
        L->Blocks.push_back(BB.get());

    // Exits.
    for (BasicBlock *BB : L->Blocks) {
      bool Exiting = false;
      for (BasicBlock *Succ : BB->successors())
        if (!L->BlockSet.count(Succ)) {
          Exiting = true;
          if (std::find(L->ExitBlocks.begin(), L->ExitBlocks.end(), Succ) ==
              L->ExitBlocks.end())
            L->ExitBlocks.push_back(Succ);
        }
      if (Exiting)
        L->ExitingBlocks.push_back(BB);
    }

    // Preheader: unique out-of-loop predecessor with a single successor.
    BasicBlock *Candidate = nullptr;
    bool Unique = true;
    for (BasicBlock *Pred : Header->predecessors()) {
      if (L->BlockSet.count(Pred))
        continue;
      if (Candidate) {
        Unique = false;
        break;
      }
      Candidate = Pred;
    }
    if (Unique && Candidate && Candidate->successors().size() == 1)
      L->Preheader = Candidate;

    Loops.push_back(std::move(L));
  }

  // Deterministic order: sort loops by their header's position in the
  // function (std::map over block pointers is not stable across runs).
  {
    std::map<const BasicBlock *, unsigned> BlockPos;
    unsigned Pos = 0;
    for (auto &BB : F.getBlocks())
      BlockPos[BB.get()] = Pos++;
    std::sort(Loops.begin(), Loops.end(),
              [&](const std::unique_ptr<LoopStructure> &A,
                  const std::unique_ptr<LoopStructure> &B) {
                return BlockPos[A->Header] < BlockPos[B->Header];
              });
  }

  // Establish nesting: parent = smallest strictly-enclosing loop.
  for (auto &L : Loops) {
    LoopStructure *Best = nullptr;
    for (auto &Other : Loops) {
      if (Other.get() == L.get())
        continue;
      if (!Other->BlockSet.count(L->Header))
        continue;
      if (!Best || Other->Blocks.size() < Best->Blocks.size())
        Best = Other.get();
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L.get());
    else
      TopLoops.push_back(L.get());
  }

  // Depths and preorder IDs.
  unsigned NextID = 0;
  std::function<void(LoopStructure *, unsigned)> Assign =
      [&](LoopStructure *L, unsigned Depth) {
        L->Depth = Depth;
        L->ID = NextID++;
        for (auto *Sub : L->SubLoops)
          Assign(Sub, Depth + 1);
      };
  for (auto *Top : TopLoops)
    Assign(Top, 1);

  // Innermost-loop map.
  for (auto *L : getLoopsInPreorder())
    for (auto *BB : L->Blocks) {
      auto It = InnermostLoop.find(BB);
      if (It == InnermostLoop.end() ||
          It->second->Blocks.size() > L->Blocks.size())
        InnermostLoop[BB] = L;
    }
}

std::vector<LoopStructure *> LoopInfo::getLoopsInPreorder() const {
  std::vector<LoopStructure *> Out;
  std::function<void(LoopStructure *)> Visit = [&](LoopStructure *L) {
    Out.push_back(L);
    for (auto *Sub : L->SubLoops)
      Visit(Sub);
  };
  for (auto *Top : TopLoops)
    Visit(Top);
  return Out;
}

LoopStructure *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  auto It = InnermostLoop.find(BB);
  return It == InnermostLoop.end() ? nullptr : It->second;
}
