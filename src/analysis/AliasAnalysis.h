//===----------------------------------------------------------------------===//
///
/// \file
/// Alias analyses powering the PDG. Three implementations model the
/// paper's precision spectrum (Figure 3):
///  - NoAliasAnalysis: everything may alias (lower bound);
///  - BasicAliasAnalysis: LLVM-like intraprocedural rules;
///  - AndersenAliasAnalysis: whole-program inclusion-based points-to,
///    standing in for the SCAF/SVF stack NOELLE integrates.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_ALIASANALYSIS_H
#define ANALYSIS_ALIASANALYSIS_H

#include "ir/Instructions.h"
#include "ir/Module.h"

#include <map>
#include <memory>
#include <set>

namespace nir {

enum class AliasResult { NoAlias, MayAlias, MustAlias };

enum class ModRefResult { NoModRef, Ref, Mod, ModRef };

/// The pointer, byte width, and direction of one direct memory access
/// (scalar load/store or vector vload/vstore).
struct MemAccess {
  const Value *Ptr = nullptr;
  uint64_t Size = 0;
  bool IsWrite = false;
};

/// Describes \p I's direct memory access, if it has one. Calls are not
/// direct accesses (their effects flow through mod/ref summaries).
bool memoryAccessOf(const Instruction *I, MemAccess &Out);

/// The width used when disambiguating an access: scalars round up to the
/// historical 8-byte granule (conservative: never removes an overlap),
/// vector accesses keep their full extent so superword loads and stores
/// are not treated as one-granule accesses.
inline uint64_t accessGranule(uint64_t Size) { return Size < 8 ? 8 : Size; }

/// Interface for memory-disambiguation queries over pointer values.
class AliasAnalysis {
public:
  virtual ~AliasAnalysis() = default;

  /// May the memory reached through \p P1 overlap that reached through
  /// \p P2?
  virtual AliasResult alias(const Value *P1, const Value *P2) = 0;

  /// Size-aware form: may [P1, P1+S1) overlap [P2, P2+S2)? The unsized
  /// query is the S1 = S2 = 8 special case; analyses that reason about
  /// constant offsets must honor the extents so vector accesses (up to
  /// 64 bytes) are not disambiguated with scalar widths.
  virtual AliasResult alias(const Value *P1, uint64_t S1, const Value *P2,
                            uint64_t S2) {
    (void)S1;
    (void)S2;
    return alias(P1, P2);
  }

  /// How may instruction \p I access the memory reached through \p Ptr?
  /// The sized form bounds the extent reached through \p Ptr.
  virtual ModRefResult getModRef(const Instruction *I, const Value *Ptr);
  ModRefResult getModRef(const Instruction *I, const Value *Ptr,
                         uint64_t Size);

  /// A short name for reports ("none", "basic", "andersen").
  virtual const char *getName() const = 0;
};

/// The most conservative analysis: every pointer pair may alias.
class NoAliasAnalysis : public AliasAnalysis {
public:
  AliasResult alias(const Value *P1, const Value *P2) override;
  const char *getName() const override { return "none"; }
};

/// LLVM-style local rules: distinct stack slots and globals cannot alias;
/// geps off the same base with different constant indexes cannot alias.
/// Pointer arguments and loaded pointers conservatively may alias
/// anything that escapes.
class BasicAliasAnalysis : public AliasAnalysis {
public:
  AliasResult alias(const Value *P1, const Value *P2) override;
  AliasResult alias(const Value *P1, uint64_t S1, const Value *P2,
                    uint64_t S2) override;
  const char *getName() const override { return "basic"; }

private:
  /// Walks gep chains to the underlying object, accumulating whether the
  /// offset is a known constant.
  static const Value *getUnderlyingObject(const Value *P, int64_t &Offset,
                                          bool &OffsetKnown);

  /// True if the object's address never escapes the current function
  /// (never stored, never passed to a call).
  static bool isNonEscapingLocal(const Value *Obj);
};

/// Whole-program, flow-insensitive, inclusion-based (Andersen) points-to
/// analysis. Abstract memory objects are allocation sites: globals,
/// allocas, and calls to the runtime allocator. Function values
/// participate so the analysis also resolves indirect-call targets, which
/// NOELLE's complete call graph consumes.
class AndersenAliasAnalysis : public AliasAnalysis {
public:
  explicit AndersenAliasAnalysis(Module &M);

  AliasResult alias(const Value *P1, const Value *P2) override;
  AliasResult alias(const Value *P1, uint64_t S1, const Value *P2,
                    uint64_t S2) override;
  const char *getName() const override { return "andersen"; }

  /// Possible targets of an indirect call: every function whose address
  /// flows to the callee operand.
  std::vector<Function *> getIndirectCallees(const CallInst *Call) const;

  /// The points-to set (allocation-site values) of a pointer.
  const std::set<const Value *> &getPointsTo(const Value *P) const;

private:
  void addConstraintEdgesForFunction(Function &F);
  void solve();

  /// Union-find-free simple worklist representation.
  std::map<const Value *, std::set<const Value *>> PointsTo;
  std::map<const Value *, std::set<const Value *>> CopyEdges; // src -> dsts
  /// Loads pending: (ptr, dst); Stores pending: (ptr, src).
  std::vector<std::pair<const Value *, const Value *>> LoadCons;
  std::vector<std::pair<const Value *, const Value *>> StoreCons;
  /// Per abstract object: what its pointer-typed content may point to.
  std::map<const Value *, std::set<const Value *>> Contents;

  std::set<const Value *> EmptySet;
  Module &M;
};

/// Factory selecting the analysis stack by name; "noelle" maps to
/// Andersen and "llvm" to Basic, mirroring the paper's comparison.
std::unique_ptr<AliasAnalysis> createAliasAnalysis(const std::string &Name,
                                                   Module &M);

} // namespace nir

#endif // ANALYSIS_ALIASANALYSIS_H
