//===----------------------------------------------------------------------===//
///
/// \file
/// CFG helpers: traversal orders and reachability over basic blocks.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_CFG_H
#define ANALYSIS_CFG_H

#include "ir/Function.h"

#include <vector>

namespace nir {

/// Blocks of \p F in reverse post-order from the entry (a topological
/// order ignoring back edges). Unreachable blocks are excluded.
std::vector<BasicBlock *> reversePostOrder(Function &F);

/// Blocks of \p F in post-order from the entry.
std::vector<BasicBlock *> postOrder(Function &F);

/// Blocks reachable from the entry of \p F.
std::vector<BasicBlock *> reachableBlocks(Function &F);

/// True if \p To is reachable from \p From following CFG edges (inclusive:
/// a block reaches itself).
bool isReachable(BasicBlock *From, BasicBlock *To);

} // namespace nir

#endif // ANALYSIS_CFG_H
