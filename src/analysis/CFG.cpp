#include "analysis/CFG.h"

#include <algorithm>
#include <set>

using namespace nir;

namespace {

void postOrderVisit(BasicBlock *BB, std::set<BasicBlock *> &Visited,
                    std::vector<BasicBlock *> &Out) {
  if (!Visited.insert(BB).second)
    return;
  for (BasicBlock *Succ : BB->successors())
    postOrderVisit(Succ, Visited, Out);
  Out.push_back(BB);
}

} // namespace

std::vector<BasicBlock *> nir::postOrder(Function &F) {
  std::vector<BasicBlock *> Out;
  if (F.getNumBlocks() == 0)
    return Out;
  std::set<BasicBlock *> Visited;
  postOrderVisit(&F.getEntryBlock(), Visited, Out);
  return Out;
}

std::vector<BasicBlock *> nir::reversePostOrder(Function &F) {
  auto Out = postOrder(F);
  std::reverse(Out.begin(), Out.end());
  return Out;
}

std::vector<BasicBlock *> nir::reachableBlocks(Function &F) {
  return postOrder(F);
}

bool nir::isReachable(BasicBlock *From, BasicBlock *To) {
  std::set<BasicBlock *> Visited;
  std::vector<BasicBlock *> Work = {From};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (BB == To)
      return true;
    if (!Visited.insert(BB).second)
      continue;
    for (BasicBlock *Succ : BB->successors())
      Work.push_back(Succ);
  }
  return false;
}
