//===----------------------------------------------------------------------===//
///
/// \file
/// LoopStructure (NOELLE's "LS" abstraction) and LoopInfo: natural-loop
/// discovery with headers, latches, preheaders, exits, and nesting. The
/// objects are owned by LoopInfo and live until the user destroys it —
/// NOELLE's fix for LLVM's function-pass cache-invalidation hazard.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_LOOPINFO_H
#define ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <memory>
#include <set>
#include <vector>

namespace nir {

/// The structure of one natural loop: header, body, latches, exits.
class LoopStructure {
public:
  BasicBlock *getHeader() const { return Header; }

  /// Blocks of the loop; the header is first.
  const std::vector<BasicBlock *> &getBlocks() const { return Blocks; }

  bool contains(const BasicBlock *BB) const { return BlockSet.count(BB); }
  bool contains(const Instruction *I) const {
    return I->getParent() && contains(I->getParent());
  }

  /// In-loop predecessors of the header (sources of back edges).
  const std::vector<BasicBlock *> &getLatches() const { return Latches; }

  /// The unique out-of-loop predecessor of the header whose only successor
  /// is the header, or null if the loop has no canonical preheader.
  BasicBlock *getPreheader() const { return Preheader; }

  /// In-loop blocks with a successor outside the loop.
  const std::vector<BasicBlock *> &getExitingBlocks() const {
    return ExitingBlocks;
  }

  /// Out-of-loop blocks targeted by exiting blocks.
  const std::vector<BasicBlock *> &getExitBlocks() const {
    return ExitBlocks;
  }

  LoopStructure *getParentLoop() const { return Parent; }
  const std::vector<LoopStructure *> &getSubLoops() const { return SubLoops; }

  /// Nesting depth; top-level loops have depth 1.
  unsigned getDepth() const { return Depth; }

  /// Number of instructions across the loop's blocks.
  uint64_t getNumInstructions() const;

  /// All instructions of the loop in block order.
  std::vector<Instruction *> getInstructions() const;

  /// True if the loop is in rotated (do-while) form: some latch is also an
  /// exiting block. LLVM's induction-variable analysis (modelled in
  /// src/baselines) only handles loops of this shape.
  bool isDoWhileForm() const;

  /// True if the header is an exiting block (classic while-loop shape).
  bool isWhileForm() const;

  /// The function containing this loop.
  Function *getFunction() const { return Header->getParent(); }

  /// A stable identifier within the function (preorder index).
  unsigned getID() const { return ID; }

private:
  friend class LoopInfo;

  BasicBlock *Header = nullptr;
  std::vector<BasicBlock *> Blocks;
  std::set<const BasicBlock *> BlockSet;
  std::vector<BasicBlock *> Latches;
  BasicBlock *Preheader = nullptr;
  std::vector<BasicBlock *> ExitingBlocks;
  std::vector<BasicBlock *> ExitBlocks;
  LoopStructure *Parent = nullptr;
  std::vector<LoopStructure *> SubLoops;
  unsigned Depth = 1;
  unsigned ID = 0;
};

/// Discovers all natural loops of a function.
class LoopInfo {
public:
  LoopInfo(Function &F, const DominatorTree &DT);

  /// Outermost loops.
  const std::vector<LoopStructure *> &getTopLevelLoops() const {
    return TopLoops;
  }

  /// All loops, outer before inner (preorder over the nesting forest).
  std::vector<LoopStructure *> getLoopsInPreorder() const;

  /// The innermost loop containing \p BB, or null.
  LoopStructure *getLoopFor(const BasicBlock *BB) const;

  unsigned getNumLoops() const { return static_cast<unsigned>(Loops.size()); }

private:
  std::vector<std::unique_ptr<LoopStructure>> Loops;
  std::vector<LoopStructure *> TopLoops;
  std::map<const BasicBlock *, LoopStructure *> InnermostLoop;
};

} // namespace nir

#endif // ANALYSIS_LOOPINFO_H
