//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
/// algorithm), dominance frontiers, and instruction-level dominance
/// queries. Unlike LLVM's function-pass-managed analyses, these objects
/// are plain values whose lifetime is controlled by their user — the
/// property NOELLE introduces to avoid the stale-pointer bugs described in
/// the paper (Section 2.2, "Other abstractions").
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DOMINATORS_H
#define ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <set>
#include <vector>

namespace nir {

/// Immediate-dominator tree for a function's CFG.
class DominatorTree {
public:
  explicit DominatorTree(Function &F);

  /// The immediate dominator of \p BB, or null for the entry block and
  /// unreachable blocks.
  BasicBlock *getIDom(BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(BasicBlock *A, BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  /// Instruction-level dominance: \p A dominates \p B if A's block
  /// strictly dominates B's, or they share a block and A comes first.
  /// Phi ordering within the phi group is considered simultaneous; a phi
  /// dominates every non-phi of its block.
  bool dominates(const Instruction *A, const Instruction *B) const;

  /// Children of \p BB in the dominator tree.
  std::vector<BasicBlock *> getChildren(BasicBlock *BB) const;

  /// The dominance frontier of \p BB (used by mem2reg's phi placement).
  const std::set<BasicBlock *> &getDominanceFrontier(BasicBlock *BB) const;

  /// True if the block was reachable when the tree was built.
  bool isReachableFromEntry(BasicBlock *BB) const {
    return RPOIndex.count(BB) != 0;
  }

private:
  Function &F;
  std::map<BasicBlock *, BasicBlock *> IDom;
  std::map<BasicBlock *, unsigned> RPOIndex;
  std::map<BasicBlock *, std::set<BasicBlock *>> Frontier;
  std::set<BasicBlock *> EmptyFrontier;
};

/// Immediate post-dominator tree. Computed over the reversed CFG with a
/// virtual sink joining all exit blocks.
class PostDominatorTree {
public:
  explicit PostDominatorTree(Function &F);

  /// The immediate post-dominator of \p BB, or null if BB is an exit or
  /// post-dominated only by the virtual sink.
  BasicBlock *getIPDom(BasicBlock *BB) const;

  /// True if \p A post-dominates \p B (reflexive).
  bool postDominates(BasicBlock *A, BasicBlock *B) const;

private:
  std::map<BasicBlock *, BasicBlock *> IPDom; // null value = virtual sink
  std::set<BasicBlock *> Known;
};

} // namespace nir

#endif // ANALYSIS_DOMINATORS_H
