//===----------------------------------------------------------------------===//
///
/// \file
/// A model of gcc/icc auto-parallelization for Figure 5's baselines:
/// DOALL-style transformation gated on what production compilers can
/// prove — weak (intraprocedural) alias analysis, no interprocedural
/// mod/ref, do-while-only induction variables, and no speculation. On
/// the paper's irregular benchmarks these conditions almost never hold,
/// which is why the gcc/icc series in Figure 5 sits at 1.0x.
///
//===----------------------------------------------------------------------===//

#ifndef BASELINES_CONSERVATIVEPARALLELIZER_H
#define BASELINES_CONSERVATIVEPARALLELIZER_H

#include "xforms/DOALL.h"

namespace baselines {

struct ConservativeOptions {
  unsigned NumCores = 4;
  /// "gcc" and "icc" differ only marginally for our purposes; icc
  /// additionally recognizes simple sum reductions.
  bool AllowReductions = false;
  const char *Name = "gcc";
};

struct ConservativeDecision {
  std::string FunctionName;
  unsigned LoopID = 0;
  bool Parallelized = false;
  std::string Reason;
};

/// Runs the conservative auto-parallelizer over a module. Internally it
/// reuses the DOALL mechanics but under an "llvm"-strength PDG and
/// do-while-only IV detection.
class ConservativeParallelizer {
public:
  ConservativeParallelizer(nir::Module &M, ConservativeOptions Opts = {});

  std::vector<ConservativeDecision> run();

private:
  nir::Module &M;
  ConservativeOptions Opts;
};

} // namespace baselines

#endif // BASELINES_CONSERVATIVEPARALLELIZER_H
