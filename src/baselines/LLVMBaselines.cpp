#include "baselines/LLVMBaselines.h"

#include "ir/Instructions.h"

#include <set>

using namespace baselines;
using nir::AliasResult;
using nir::BinaryInst;
using nir::BranchInst;
using nir::CallInst;
using nir::CmpInst;
using nir::ConstantInt;
using nir::LoadInst;
using nir::ModRefResult;
using nir::StoreInst;

namespace {

/// Operand check shared by every case of Algorithm 1: no operand may be
/// defined inside the loop (values the fixed-point already hoisted are
/// passed in \p AlreadyInvariant).
bool operandsOutsideLoop(const Instruction *I, const LoopStructure &L,
                         const std::set<const Instruction *> &AlreadyInvariant) {
  for (const Value *Op : I->operands()) {
    const auto *OpI = nir::dyn_cast<Instruction>(Op);
    if (!OpI)
      continue;
    if (L.contains(OpI) && !AlreadyInvariant.count(OpI))
      return false;
  }
  return true;
}

bool isInvariantLLVMImpl(const Instruction *I, const LoopStructure &L,
                         const DominatorTree &DT, AliasAnalysis &AA,
                         const std::set<const Instruction *> &Hoisted) {
  // Phis, terminators, and allocas are never hoisted.
  if (nir::isa<nir::PhiInst>(I) || I->isTerminator() ||
      nir::isa<nir::AllocaInst>(I))
    return false;

  if (!operandsOutsideLoop(I, L, Hoisted))
    return false;

  if (const auto *Load = nir::dyn_cast<LoadInst>(I)) {
    // "if I is a load: check if any other instruction of L can modify
    // the same memory location accessed by I."
    for (const auto *BB : L.getBlocks())
      for (const auto &J : BB->getInstList()) {
        if (J.get() == I)
          continue;
        if (!J->mayWriteToMemory())
          continue;
        if (AA.getModRef(J.get(), Load->getPointerOperand()) !=
            ModRefResult::NoModRef)
          return false;
      }
    return true;
  }

  if (const auto *Store = nir::dyn_cast<StoreInst>(I)) {
    // "if I is a store: conservatively ensure no memory use precedes the
    // store, and no def/use would be invalidated by hoisting it."
    for (const auto *BB : L.getBlocks())
      for (const auto &J : BB->getInstList()) {
        if (J.get() == I)
          continue;
        if (!J->mayReadOrWriteMemory())
          continue;
        if (AA.getModRef(J.get(), Store->getPointerOperand()) ==
            ModRefResult::NoModRef)
          continue;
        if (!DT.dominates(I, J.get()))
          return false;
      }
    // LLVM additionally requires the nearest dominating memory access to
    // be outside the loop; our conservative stand-in rejects any
    // aliasing access in the loop (handled above).
    return true;
  }

  if (const auto *Call = nir::dyn_cast<CallInst>(I)) {
    // "if I is a call: it must not modify any memory, only access memory
    // via arguments, and no sub-loop may modify that memory."
    if (Call->getMetadata("noelle.pure") != "true")
      return false;
    return true;
  }

  // Pure arithmetic with out-of-loop operands.
  return true;
}

} // namespace

bool baselines::isInvariantLLVM(const Instruction *I, const LoopStructure &L,
                                const DominatorTree &DT, AliasAnalysis &AA) {
  std::set<const Instruction *> None;
  return isInvariantLLVMImpl(I, L, DT, AA, None);
}

std::vector<Instruction *>
baselines::findInvariantsLLVM(const LoopStructure &L, const DominatorTree &DT,
                              AliasAnalysis &AA) {
  std::set<const Instruction *> Hoisted;
  std::vector<Instruction *> Out;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto *BB : L.getBlocks())
      for (const auto &I : BB->getInstList()) {
        if (Hoisted.count(I.get()))
          continue;
        if (isInvariantLLVMImpl(I.get(), L, DT, AA, Hoisted)) {
          Hoisted.insert(I.get());
          Out.push_back(I.get());
          Changed = true;
        }
      }
  }
  return Out;
}

PhiInst *baselines::findGoverningIVLLVM(const LoopStructure &L) {
  // LLVM's detection expects the rotated (do-while) form: the latch is an
  // exiting block and its condition compares the incremented IV against
  // an out-of-loop bound.
  if (!L.isDoWhileForm())
    return nullptr;

  for (auto *Latch : L.getLatches()) {
    const auto *Br = nir::dyn_cast_or_null<BranchInst>(Latch->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    const auto *Cmp = nir::dyn_cast<CmpInst>(Br->getCondition());
    if (!Cmp)
      continue;
    for (const Value *Side : {Cmp->getLHS(), Cmp->getRHS()}) {
      const auto *Step = nir::dyn_cast<BinaryInst>(Side);
      if (!Step || (Step->getOp() != BinaryInst::Op::Add &&
                    Step->getOp() != BinaryInst::Op::Sub))
        continue;
      // One operand is a header phi, the other a constant.
      for (const Value *Op : {Step->getLHS(), Step->getRHS()}) {
        auto *Phi =
            nir::dyn_cast<PhiInst>(const_cast<Value *>(Op));
        if (!Phi || Phi->getParent() != L.getHeader())
          continue;
        const Value *Other =
            Step->getLHS() == Phi ? Step->getRHS() : Step->getLHS();
        if (!nir::isa<ConstantInt>(Other))
          continue;
        // The phi's in-loop incoming must be this step instruction.
        for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
          if (L.contains(Phi->getIncomingBlock(K)) &&
              Phi->getIncomingValue(K) == Step)
            return Phi;
      }
    }
  }
  return nullptr;
}
