//===----------------------------------------------------------------------===//
///
/// \file
/// Faithful models of the *LLVM-level* analyses the paper compares NOELLE
/// against (Figures 3 and 4, §4.3):
///  - Algorithm 1: LLVM's low-level loop-invariance test built on operand
///    checks, dominators, and pairwise alias queries;
///  - LLVM's induction-variable detection, which requires loops in
///    do-while (rotated) shape;
///  - the weak alias stack ("basic" AA, no interprocedural summaries).
///
//===----------------------------------------------------------------------===//

#ifndef BASELINES_LLVMBASELINES_H
#define BASELINES_LLVMBASELINES_H

#include "analysis/AliasAnalysis.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

namespace baselines {

using nir::AliasAnalysis;
using nir::DominatorTree;
using nir::Instruction;
using nir::LoopStructure;
using nir::PhiInst;
using nir::Value;

/// The paper's Algorithm 1: isInvariant_llvm(I, L, DT, AA). Operand
/// loop-locality first, then per-opcode memory checks through pairwise
/// alias/dominance queries.
bool isInvariantLLVM(const Instruction *I, const LoopStructure &L,
                     const DominatorTree &DT, AliasAnalysis &AA);

/// All instructions of \p L that Algorithm 1 classifies as invariant
/// (fixed-point iteration, mirroring LLVM's hoisting loop in LICM).
std::vector<Instruction *> findInvariantsLLVM(const LoopStructure &L,
                                              const DominatorTree &DT,
                                              AliasAnalysis &AA);

/// LLVM-style governing-IV detection. Only recognizes loops in do-while
/// shape (the latch is an exiting block) with the canonical
/// phi/increment/compare pattern rooted in the latch — the reason LLVM
/// finds 11 governing IVs where NOELLE finds 385 (§4.3).
PhiInst *findGoverningIVLLVM(const LoopStructure &L);

} // namespace baselines

#endif // BASELINES_LLVMBASELINES_H
