#include "baselines/ConservativeParallelizer.h"

#include "baselines/LLVMBaselines.h"

using namespace baselines;
using noelle::DOALL;
using noelle::DOALLOptions;
using noelle::LoopContent;
using noelle::Noelle;
using noelle::NoelleOptions;

ConservativeParallelizer::ConservativeParallelizer(nir::Module &M,
                                                   ConservativeOptions Opts)
    : M(M), Opts(Opts) {}

std::vector<ConservativeDecision> ConservativeParallelizer::run() {
  // The production-compiler model: weak AA, no interprocedural
  // summaries.
  NoelleOptions NOpts;
  NOpts.PDGOptions.AliasAnalysisName = "llvm";
  NOpts.PDGOptions.UseModRefSummaries = false;
  Noelle N(M, NOpts);

  DOALLOptions DOpts;
  DOpts.NumCores = Opts.NumCores;
  DOALL Tool(N, DOpts);

  std::vector<ConservativeDecision> Decisions;
  std::set<std::pair<std::string, unsigned>> Attempted;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (LoopContent *LC : N.getLoopContents()) {
      nir::LoopStructure &LS = LC->getLoopStructure();
      if (LS.getFunction()->getMetadata("noelle.task") == "true")
        continue;
      unsigned HeaderPos = 0, Pos = 0;
      for (auto &BB : LS.getFunction()->getBlocks()) {
        if (BB.get() == LS.getHeader())
          HeaderPos = Pos;
        ++Pos;
      }
      auto Key = std::make_pair(LS.getFunction()->getName(), HeaderPos);
      if (!Attempted.insert(Key).second)
        continue;

      ConservativeDecision D;
      D.FunctionName = Key.first;
      D.LoopID = LS.getID();

      // Production compilers only handle rotated counted loops.
      if (!findGoverningIVLLVM(LS)) {
        D.Reason = "induction variable not recognized (loop is not in "
                   "do-while form)";
        Decisions.push_back(D);
        continue;
      }
      // gcc's auto-par has no reduction recognition in our model.
      if (!Opts.AllowReductions &&
          !LC->getReductionManager().getReductions().empty()) {
        D.Reason = "reduction not supported";
        Decisions.push_back(D);
        continue;
      }
      noelle::Legality L = Tool.applicable(*LC);
      if (!L) {
        D.Reason = L.Reason;
        Decisions.push_back(D);
        continue;
      }
      noelle::Decision TD;
      D.Parallelized = Tool.apply(*LC, Tool.defaultPlan(), TD);
      if (!D.Parallelized)
        D.Reason = TD.Reason;
      Decisions.push_back(D);
      if (D.Parallelized) {
        Progress = true;
        break;
      }
    }
  }
  return Decisions;
}
