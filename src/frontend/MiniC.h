//===----------------------------------------------------------------------===//
///
/// \file
/// Public entry points of the MiniC frontend: parse MiniC source to an
/// AST, lower it to NIR, and (by default) promote locals to SSA form.
///
//===----------------------------------------------------------------------===//

#ifndef FRONTEND_MINIC_H
#define FRONTEND_MINIC_H

#include "frontend/AST.h"
#include "ir/Module.h"

#include <memory>
#include <string>

namespace minic {

/// Parses MiniC source. Returns null and fills \p Error on failure.
std::unique_ptr<TranslationUnit> parseMiniC(const std::string &Source,
                                            std::string &Error);

struct CompileOptions {
  bool RunMem2Reg = true; ///< Promote scalar locals to SSA registers.
  std::string ModuleName = "minic";
};

/// Compiles MiniC source to an NIR module. Returns null and fills
/// \p Error on failure.
std::unique_ptr<nir::Module> compileMiniC(nir::Context &Ctx,
                                          const std::string &Source,
                                          std::string &Error,
                                          CompileOptions Opts = {});

/// Aborting convenience wrapper for fixtures and benchmarks.
std::unique_ptr<nir::Module> compileMiniCOrDie(nir::Context &Ctx,
                                               const std::string &Source,
                                               CompileOptions Opts = {});

/// Lowers a parsed translation unit to NIR (no mem2reg).
std::unique_ptr<nir::Module> codegen(nir::Context &Ctx,
                                     const TranslationUnit &TU,
                                     const std::string &ModuleName,
                                     std::string &Error);

/// Promotes scalar, non-escaping allocas of every function to SSA
/// registers (classic dominance-frontier phi placement + renaming).
void promoteMemoryToRegisters(nir::Module &M);

} // namespace minic

#endif // FRONTEND_MINIC_H
