//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC abstract syntax tree. MiniC is the C subset used as the
/// frontend of this reproduction: int (64-bit), double, char, pointers,
/// arrays, functions, function pointers, and full control flow.
///
//===----------------------------------------------------------------------===//

#ifndef FRONTEND_AST_H
#define FRONTEND_AST_H

#include <memory>
#include <string>
#include <vector>

namespace minic {

/// A MiniC type: a base kind plus pointer depth (e.g. int** has depth 2).
struct CType {
  enum class Base { Void, Int, Double, Char, FuncPtr };
  Base TheBase = Base::Int;
  unsigned PtrDepth = 0;

  /// For FuncPtr: the signature.
  std::vector<CType> ParamTypes;
  std::shared_ptr<CType> RetType;

  bool isPointer() const { return PtrDepth > 0 || TheBase == Base::FuncPtr; }
  bool isDouble() const { return TheBase == Base::Double && PtrDepth == 0; }
  bool isInt() const {
    return (TheBase == Base::Int || TheBase == Base::Char) && PtrDepth == 0;
  }
  bool isVoid() const { return TheBase == Base::Void && PtrDepth == 0; }

  static CType makeInt() { return CType{Base::Int, 0, {}, nullptr}; }
  static CType makeDouble() { return CType{Base::Double, 0, {}, nullptr}; }
  static CType makeVoid() { return CType{Base::Void, 0, {}, nullptr}; }

  CType pointee() const {
    CType T = *this;
    if (T.PtrDepth > 0)
      --T.PtrDepth;
    return T;
  }
  CType pointerTo() const {
    CType T = *this;
    ++T.PtrDepth;
    return T;
  }

  /// Element size in bytes when this type is the pointee of an indexed
  /// pointer (char* steps by 1, everything else by 8).
  uint64_t elementSize() const {
    return (TheBase == Base::Char && PtrDepth == 0) ? 1 : 8;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr {
  enum class Kind {
    IntLit,
    FloatLit,
    Var,
    Unary,    // -  !  *  &
    Binary,   // arithmetic / comparison / logical / bitwise
    Assign,   // lhs = rhs (also an expression)
    Index,    // base[idx]
    Call,     // callee(args) — direct or through a function pointer
    CastExpr, // (int)e or (double)e
  };
  Kind K;
  unsigned Line = 0;

  // Literals.
  long long IntValue = 0;
  double FloatValue = 0;

  // Var / direct call name.
  std::string Name;

  // Unary/Binary operator spelling ("-", "!", "*", "&", "+", "<", "&&"...).
  std::string Op;

  std::unique_ptr<Expr> LHS, RHS; // Unary uses LHS only.
  std::vector<std::unique_ptr<Expr>> Args;
  CType CastTo;

  explicit Expr(Kind K) : K(K) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum class Kind {
    Block,
    Decl, // local variable declaration (with optional init / array size)
    ExprStmt,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
  };
  Kind K;
  unsigned Line = 0;

  // Decl.
  CType DeclType;
  std::string DeclName;
  long long ArraySize = 0; ///< >0 for local arrays
  std::unique_ptr<Expr> Init;

  std::unique_ptr<Expr> Cond;
  std::unique_ptr<Expr> E; // ExprStmt / Return value / For-step
  std::unique_ptr<Stmt> Then, Else, Body;
  std::unique_ptr<Stmt> ForInit; // Decl or ExprStmt
  std::vector<std::unique_ptr<Stmt>> Stmts; // Block

  explicit Stmt(Kind K) : K(K) {}
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

struct Param {
  CType Ty;
  std::string Name;
};

struct FunctionDecl {
  CType RetTy;
  std::string Name;
  std::vector<Param> Params;
  std::unique_ptr<Stmt> Body; ///< null = extern declaration
  unsigned Line = 0;
};

struct GlobalDecl {
  CType Ty;
  std::string Name;
  long long ArraySize = 0; ///< >0 for arrays
  std::vector<double> FloatInit;
  std::vector<long long> IntInit;
  bool HasScalarInit = false;
  long long ScalarIntInit = 0;
  double ScalarFloatInit = 0;
  unsigned Line = 0;
};

struct TranslationUnit {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace minic

#endif // FRONTEND_AST_H
