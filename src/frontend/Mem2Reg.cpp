//===----------------------------------------------------------------------===//
///
/// \file
/// mem2reg: promotes scalar, non-escaping allocas to SSA registers using
/// iterated dominance frontiers for phi placement and a dominator-tree
/// walk for renaming. This is what turns the frontend's load/store soup
/// into the SSA form NOELLE's abstractions (IV, SCCDAG, PDG) rely on.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"

#include "analysis/Dominators.h"
#include "ir/Instructions.h"
#include "ir/Utils.h"

#include <map>
#include <set>

using namespace nir;

namespace {

/// An alloca is promotable if it holds a scalar and its address is used
/// only as the direct pointer of loads and stores.
bool isPromotable(const AllocaInst *A) {
  Type *Ty = A->getAllocatedType();
  if (Ty->isArray() || Ty->isVoid())
    return false;
  for (const auto &U : A->uses()) {
    const User *Usr = U.TheUser;
    if (isa<LoadInst>(Usr))
      continue;
    if (const auto *S = dyn_cast<StoreInst>(Usr)) {
      if (S->getValueOperand() == A)
        return false; // Address escapes by being stored.
      continue;
    }
    return false; // gep, call, phi... -> address escapes.
  }
  return true;
}

class Promoter {
public:
  Promoter(Function &F, const DominatorTree &DT) : F(F), DT(DT) {}

  void run() {
    for (auto &BB : F.getBlocks())
      for (auto &I : BB->getInstList())
        if (auto *A = dyn_cast<AllocaInst>(I.get()))
          if (isPromotable(A))
            Allocas.push_back(A);
    if (Allocas.empty())
      return;

    placePhis();
    rename(&F.getEntryBlock(), {});
    cleanup();
  }

private:
  void placePhis() {
    Context &Ctx = F.getParent()->getContext();
    for (AllocaInst *A : Allocas) {
      // Blocks containing a store to A.
      std::vector<BasicBlock *> DefBlocks;
      for (const auto &U : A->uses())
        if (auto *S = dyn_cast<StoreInst>(U.TheUser))
          if (S->getPointerOperand() == A)
            DefBlocks.push_back(S->getParent());

      // Iterated dominance frontier.
      std::set<BasicBlock *> PhiBlocks;
      std::vector<BasicBlock *> Work = DefBlocks;
      while (!Work.empty()) {
        BasicBlock *BB = Work.back();
        Work.pop_back();
        for (BasicBlock *DF : DT.getDominanceFrontier(BB))
          if (PhiBlocks.insert(DF).second)
            Work.push_back(DF);
      }

      for (BasicBlock *BB : PhiBlocks) {
        auto *Phi = new PhiInst(A->getAllocatedType());
        Phi->setName(A->getName());
        BB->insert(BB->front(), std::unique_ptr<Instruction>(Phi));
        PhiAlloca[Phi] = A;
        (void)Ctx;
      }
    }
  }

  /// Depth-first renaming over the dominator tree.
  void rename(BasicBlock *BB,
              std::map<AllocaInst *, Value *> Incoming) {
    Context &Ctx = F.getParent()->getContext();

    // Phis at the top of this block define new current values.
    for (auto &I : BB->getInstList()) {
      auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break;
      auto It = PhiAlloca.find(Phi);
      if (It != PhiAlloca.end())
        Incoming[It->second] = Phi;
    }

    std::vector<Instruction *> ToErase;
    for (auto &I : BB->getInstList()) {
      if (auto *L = dyn_cast<LoadInst>(I.get())) {
        auto *A = dyn_cast<AllocaInst>(L->getPointerOperand());
        if (!A || !isTracked(A))
          continue;
        Value *Cur = Incoming.count(A) ? Incoming[A]
                                       : Ctx.getUndef(A->getAllocatedType());
        L->replaceAllUsesWith(Cur);
        ToErase.push_back(L);
        continue;
      }
      if (auto *S = dyn_cast<StoreInst>(I.get())) {
        auto *A = dyn_cast<AllocaInst>(S->getPointerOperand());
        if (!A || !isTracked(A))
          continue;
        Incoming[A] = S->getValueOperand();
        ToErase.push_back(S);
      }
    }

    // Feed successors' placed phis.
    for (BasicBlock *Succ : BB->successors()) {
      for (auto &I : Succ->getInstList()) {
        auto *Phi = dyn_cast<PhiInst>(I.get());
        if (!Phi)
          break;
        auto It = PhiAlloca.find(Phi);
        if (It == PhiAlloca.end())
          continue;
        AllocaInst *A = It->second;
        Value *Cur = Incoming.count(A) ? Incoming[A]
                                       : Ctx.getUndef(A->getAllocatedType());
        if (Phi->getBlockIndex(BB) < 0)
          Phi->addIncoming(Cur, BB);
      }
    }

    for (Instruction *I : ToErase)
      I->eraseFromParent();

    for (BasicBlock *Child : DT.getChildren(BB))
      rename(Child, Incoming);
  }

  bool isTracked(AllocaInst *A) const {
    return std::find(Allocas.begin(), Allocas.end(), A) != Allocas.end();
  }

  void cleanup() {
    // Dead-phi elimination: placed phis are live only if some non-phi
    // instruction (transitively) uses them. Phis used only by other dead
    // phis — including mutual cycles across loop headers — are artifacts
    // of phi placement and must go, or they masquerade as loop-carried
    // dependences.
    std::set<PhiInst *> Live;
    std::vector<PhiInst *> Work;
    for (const auto &[Phi, A] : PhiAlloca) {
      for (const auto &U : Phi->uses()) {
        auto *UserPhi = dyn_cast<PhiInst>(static_cast<Value *>(U.TheUser));
        if (!UserPhi || !PhiAlloca.count(UserPhi)) {
          if (Live.insert(Phi).second)
            Work.push_back(Phi);
          break;
        }
      }
    }
    while (!Work.empty()) {
      PhiInst *P = Work.back();
      Work.pop_back();
      for (const Value *Op : P->operands()) {
        auto *OpPhi = dyn_cast<PhiInst>(const_cast<Value *>(Op));
        if (OpPhi && PhiAlloca.count(OpPhi) && Live.insert(OpPhi).second)
          Work.push_back(OpPhi);
      }
    }

    std::vector<PhiInst *> Dead;
    for (const auto &[Phi, A] : PhiAlloca)
      if (!Live.count(Phi))
        Dead.push_back(Phi);
    // Break cycles among the dead first, then erase.
    for (PhiInst *P : Dead)
      P->dropAllOperands();
    for (PhiInst *P : Dead) {
      if (P->hasUses())
        P->replaceAllUsesWith(
            F.getParent()->getContext().getUndef(P->getType()));
      P->eraseFromParent();
    }

    for (AllocaInst *A : Allocas) {
      assert(!A->hasUses() && "promoted alloca still has users");
      A->eraseFromParent();
    }
  }

  Function &F;
  const DominatorTree &DT;
  std::vector<AllocaInst *> Allocas;
  std::map<PhiInst *, AllocaInst *> PhiAlloca;
};

} // namespace

void minic::promoteMemoryToRegisters(nir::Module &M) {
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    DominatorTree DT(*F);
    Promoter P(*F, DT);
    P.run();
  }
}
