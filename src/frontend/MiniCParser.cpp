#include "frontend/MiniC.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace minic;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

struct Tok {
  enum class Kind { End, Ident, Int, Float, Punct } K = Kind::End;
  std::string Text; ///< identifier spelling or punctuation
  long long IntVal = 0;
  double FloatVal = 0;
  unsigned Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  std::vector<Tok> lexAll(std::string &Error) {
    std::vector<Tok> Out;
    for (;;) {
      Tok T = next(Error);
      if (!Error.empty())
        return Out;
      Out.push_back(T);
      if (T.K == Tok::Kind::End)
        return Out;
    }
  }

private:
  Tok next(std::string &Error) {
    skip();
    Tok T;
    T.Line = Line;
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      T.K = Tok::Kind::Ident;
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      T.Text = Src.substr(Start, Pos - Start);
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      bool IsFloat = false;
      while (Pos < Src.size()) {
        char D = Src[Pos];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++Pos;
        } else if (D == '.' || D == 'e' || D == 'E') {
          IsFloat = true;
          ++Pos;
          if (Pos < Src.size() && (Src[Pos] == '+' || Src[Pos] == '-') &&
              (D == 'e' || D == 'E'))
            ++Pos;
        } else {
          break;
        }
      }
      std::string S = Src.substr(Start, Pos - Start);
      if (IsFloat) {
        T.K = Tok::Kind::Float;
        T.FloatVal = std::strtod(S.c_str(), nullptr);
      } else {
        T.K = Tok::Kind::Int;
        T.IntVal = std::strtoll(S.c_str(), nullptr, 10);
      }
      return T;
    }
    if (C == '\'') {
      // Character literal -> integer token.
      ++Pos;
      long long V = 0;
      if (Pos < Src.size() && Src[Pos] == '\\') {
        ++Pos;
        char E = Pos < Src.size() ? Src[Pos++] : 0;
        V = E == 'n' ? '\n' : E == 't' ? '\t' : E == '0' ? 0 : E;
      } else if (Pos < Src.size()) {
        V = Src[Pos++];
      }
      if (Pos < Src.size() && Src[Pos] == '\'')
        ++Pos;
      T.K = Tok::Kind::Int;
      T.IntVal = V;
      return T;
    }
    // Multi-char punctuation first.
    static const char *Two[] = {"==", "!=", "<=", ">=", "&&",
                                "||", "<<", ">>", "+=", "-="};
    for (const char *P : Two) {
      if (Src.compare(Pos, 2, P) == 0) {
        T.K = Tok::Kind::Punct;
        T.Text = P;
        Pos += 2;
        return T;
      }
    }
    static const std::string Single = "+-*/%<>=!&|^(){}[],;.";
    if (Single.find(C) != std::string::npos) {
      T.K = Tok::Kind::Punct;
      T.Text = std::string(1, C);
      ++Pos;
      return T;
    }
    std::ostringstream OS;
    OS << "line " << Line << ": unexpected character '" << C << "'";
    Error = OS.str();
    return T;
  }

  void skip() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == '/')) {
          if (Src[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        Pos += 2;
      } else {
        break;
      }
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::vector<Tok> Toks) : Toks(std::move(Toks)) {}

  std::unique_ptr<TranslationUnit> run(std::string &Error) {
    auto TU = std::make_unique<TranslationUnit>();
    while (!failed() && peek().K != Tok::Kind::End)
      parseTopLevel(*TU);
    if (failed()) {
      Error = Err;
      return nullptr;
    }
    return TU;
  }

private:
  const Tok &peek(unsigned Ahead = 0) const {
    size_t I = Cursor + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Tok advance() { return Toks[std::min(Cursor++, Toks.size() - 1)]; }
  bool failed() const { return !Err.empty(); }

  void fail(const std::string &Msg) {
    if (Err.empty()) {
      std::ostringstream OS;
      OS << "line " << peek().Line << ": " << Msg;
      Err = OS.str();
    }
  }

  bool isPunct(const char *P, unsigned Ahead = 0) const {
    return peek(Ahead).K == Tok::Kind::Punct && peek(Ahead).Text == P;
  }
  bool isIdent(const char *S, unsigned Ahead = 0) const {
    return peek(Ahead).K == Tok::Kind::Ident && peek(Ahead).Text == S;
  }
  bool consumePunct(const char *P) {
    if (isPunct(P)) {
      advance();
      return true;
    }
    return false;
  }
  void expectPunct(const char *P) {
    if (!consumePunct(P))
      fail(std::string("expected '") + P + "'");
  }
  std::string expectIdent() {
    if (peek().K != Tok::Kind::Ident) {
      fail("expected identifier");
      return "";
    }
    return advance().Text;
  }

  bool isTypeKeyword(unsigned Ahead = 0) const {
    return isIdent("int", Ahead) || isIdent("double", Ahead) ||
           isIdent("char", Ahead) || isIdent("void", Ahead);
  }

  /// Parses a base type plus '*'s: "int**", "double", "void*".
  CType parseType() {
    CType T;
    if (isIdent("int"))
      T.TheBase = CType::Base::Int;
    else if (isIdent("double"))
      T.TheBase = CType::Base::Double;
    else if (isIdent("char"))
      T.TheBase = CType::Base::Char;
    else if (isIdent("void"))
      T.TheBase = CType::Base::Void;
    else {
      fail("expected a type");
      return T;
    }
    advance();
    while (consumePunct("*"))
      ++T.PtrDepth;
    return T;
  }

  /// After a base type, parses a declarator. Handles the function-pointer
  /// form "ret (*name)(params)". Returns the declared name; the final
  /// type lands in \p Ty.
  std::string parseDeclarator(CType &Ty) {
    if (isPunct("(") && isPunct("*", 1)) {
      advance(); // (
      advance(); // *
      std::string Name = expectIdent();
      expectPunct(")");
      expectPunct("(");
      CType FP;
      FP.TheBase = CType::Base::FuncPtr;
      FP.RetType = std::make_shared<CType>(Ty);
      if (!isPunct(")")) {
        for (;;) {
          FP.ParamTypes.push_back(parseType());
          // Parameter names inside fp declarators are optional.
          if (peek().K == Tok::Kind::Ident && !isTypeKeyword())
            advance();
          if (!consumePunct(","))
            break;
        }
      }
      expectPunct(")");
      Ty = FP;
      return Name;
    }
    return expectIdent();
  }

  void parseTopLevel(TranslationUnit &TU) {
    bool IsExtern = false;
    if (isIdent("extern")) {
      IsExtern = true;
      advance();
    }
    if (!isTypeKeyword()) {
      fail("expected a declaration");
      return;
    }
    unsigned Line = peek().Line;
    CType Ty = parseType();
    std::string Name = parseDeclarator(Ty);
    if (failed())
      return;

    if (isPunct("(")) {
      // Function.
      advance();
      FunctionDecl FD;
      FD.RetTy = Ty;
      FD.Name = Name;
      FD.Line = Line;
      if (!isPunct(")")) {
        for (;;) {
          Param P;
          P.Ty = parseType();
          P.Name = parseDeclarator(P.Ty);
          FD.Params.push_back(std::move(P));
          if (!consumePunct(","))
            break;
        }
      }
      expectPunct(")");
      if (consumePunct(";")) {
        TU.Functions.push_back(std::move(FD)); // declaration only
        return;
      }
      if (IsExtern) {
        fail("extern function cannot have a body");
        return;
      }
      FD.Body = parseBlock();
      TU.Functions.push_back(std::move(FD));
      return;
    }

    // Global variable.
    GlobalDecl GD;
    GD.Ty = Ty;
    GD.Name = Name;
    GD.Line = Line;
    if (consumePunct("[")) {
      if (peek().K != Tok::Kind::Int) {
        fail("expected array size");
        return;
      }
      GD.ArraySize = advance().IntVal;
      expectPunct("]");
    }
    if (consumePunct("=")) {
      if (consumePunct("{")) {
        for (;;) {
          bool Neg = consumePunct("-");
          if (peek().K == Tok::Kind::Int) {
            long long V = advance().IntVal;
            GD.IntInit.push_back(Neg ? -V : V);
            GD.FloatInit.push_back(static_cast<double>(Neg ? -V : V));
          } else if (peek().K == Tok::Kind::Float) {
            double V = advance().FloatVal;
            GD.FloatInit.push_back(Neg ? -V : V);
            GD.IntInit.push_back(static_cast<long long>(Neg ? -V : V));
          } else {
            fail("expected constant in initializer list");
            return;
          }
          if (!consumePunct(","))
            break;
        }
        expectPunct("}");
      } else {
        bool Neg = consumePunct("-");
        GD.HasScalarInit = true;
        if (peek().K == Tok::Kind::Int) {
          long long V = advance().IntVal;
          GD.ScalarIntInit = Neg ? -V : V;
          GD.ScalarFloatInit = static_cast<double>(GD.ScalarIntInit);
        } else if (peek().K == Tok::Kind::Float) {
          double V = advance().FloatVal;
          GD.ScalarFloatInit = Neg ? -V : V;
          GD.ScalarIntInit = static_cast<long long>(GD.ScalarFloatInit);
        } else {
          fail("expected constant initializer");
          return;
        }
      }
    }
    expectPunct(";");
    TU.Globals.push_back(std::move(GD));
  }

  std::unique_ptr<Stmt> parseBlock() {
    auto B = std::make_unique<Stmt>(Stmt::Kind::Block);
    B->Line = peek().Line;
    expectPunct("{");
    while (!failed() && !isPunct("}") && peek().K != Tok::Kind::End)
      B->Stmts.push_back(parseStmt());
    expectPunct("}");
    return B;
  }

  std::unique_ptr<Stmt> parseStmt() {
    unsigned Line = peek().Line;

    if (isPunct("{"))
      return parseBlock();

    if (isTypeKeyword())
      return parseDecl();

    if (isIdent("if")) {
      advance();
      auto S = std::make_unique<Stmt>(Stmt::Kind::If);
      S->Line = Line;
      expectPunct("(");
      S->Cond = parseExpr();
      expectPunct(")");
      S->Then = parseStmt();
      if (isIdent("else")) {
        advance();
        S->Else = parseStmt();
      }
      return S;
    }
    if (isIdent("while")) {
      advance();
      auto S = std::make_unique<Stmt>(Stmt::Kind::While);
      S->Line = Line;
      expectPunct("(");
      S->Cond = parseExpr();
      expectPunct(")");
      S->Body = parseStmt();
      return S;
    }
    if (isIdent("do")) {
      advance();
      auto S = std::make_unique<Stmt>(Stmt::Kind::DoWhile);
      S->Line = Line;
      S->Body = parseStmt();
      if (!isIdent("while")) {
        fail("expected 'while' after do-body");
        return S;
      }
      advance();
      expectPunct("(");
      S->Cond = parseExpr();
      expectPunct(")");
      expectPunct(";");
      return S;
    }
    if (isIdent("for")) {
      advance();
      auto S = std::make_unique<Stmt>(Stmt::Kind::For);
      S->Line = Line;
      expectPunct("(");
      if (!isPunct(";")) {
        if (isTypeKeyword())
          S->ForInit = parseDecl(); // consumes ';'
        else {
          auto ES = std::make_unique<Stmt>(Stmt::Kind::ExprStmt);
          ES->E = parseExpr();
          S->ForInit = std::move(ES);
          expectPunct(";");
        }
      } else {
        expectPunct(";");
      }
      if (!isPunct(";"))
        S->Cond = parseExpr();
      expectPunct(";");
      if (!isPunct(")"))
        S->E = parseExpr(); // step
      expectPunct(")");
      S->Body = parseStmt();
      return S;
    }
    if (isIdent("return")) {
      advance();
      auto S = std::make_unique<Stmt>(Stmt::Kind::Return);
      S->Line = Line;
      if (!isPunct(";"))
        S->E = parseExpr();
      expectPunct(";");
      return S;
    }
    if (isIdent("break")) {
      advance();
      expectPunct(";");
      auto S = std::make_unique<Stmt>(Stmt::Kind::Break);
      S->Line = Line;
      return S;
    }
    if (isIdent("continue")) {
      advance();
      expectPunct(";");
      auto S = std::make_unique<Stmt>(Stmt::Kind::Continue);
      S->Line = Line;
      return S;
    }

    auto S = std::make_unique<Stmt>(Stmt::Kind::ExprStmt);
    S->Line = Line;
    S->E = parseExpr();
    expectPunct(";");
    return S;
  }

  std::unique_ptr<Stmt> parseDecl() {
    auto S = std::make_unique<Stmt>(Stmt::Kind::Decl);
    S->Line = peek().Line;
    S->DeclType = parseType();
    S->DeclName = parseDeclarator(S->DeclType);
    if (consumePunct("[")) {
      if (peek().K != Tok::Kind::Int) {
        fail("expected array size");
        return S;
      }
      S->ArraySize = advance().IntVal;
      expectPunct("]");
    }
    if (consumePunct("="))
      S->Init = parseExpr();
    expectPunct(";");
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Expr> parseExpr() { return parseAssign(); }

  std::unique_ptr<Expr> parseAssign() {
    auto L = parseBinary(0);
    if (isPunct("=") || isPunct("+=") || isPunct("-=")) {
      std::string Op = advance().Text;
      auto R = parseAssign();
      if (Op != "=") {
        // Desugar a += b into a = a + b (clone of the lhs reparse is
        // avoided by moving the lhs into both sides via a shallow copy at
        // codegen; here we synthesize the Binary node).
        auto Bin = std::make_unique<Expr>(Expr::Kind::Binary);
        Bin->Op = Op.substr(0, 1);
        Bin->LHS = cloneExpr(*L);
        Bin->RHS = std::move(R);
        R = std::move(Bin);
      }
      auto A = std::make_unique<Expr>(Expr::Kind::Assign);
      A->LHS = std::move(L);
      A->RHS = std::move(R);
      return A;
    }
    return L;
  }

  /// Binary-operator precedence (C-like).
  static int precOf(const std::string &Op) {
    if (Op == "||")
      return 1;
    if (Op == "&&")
      return 2;
    if (Op == "|")
      return 3;
    if (Op == "^")
      return 4;
    if (Op == "&")
      return 5;
    if (Op == "==" || Op == "!=")
      return 6;
    if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=")
      return 7;
    if (Op == "<<" || Op == ">>")
      return 8;
    if (Op == "+" || Op == "-")
      return 9;
    if (Op == "*" || Op == "/" || Op == "%")
      return 10;
    return -1;
  }

  std::unique_ptr<Expr> parseBinary(int MinPrec) {
    auto L = parseUnary();
    for (;;) {
      if (peek().K != Tok::Kind::Punct)
        return L;
      int Prec = precOf(peek().Text);
      if (Prec < 0 || Prec < MinPrec)
        return L;
      std::string Op = advance().Text;
      auto R = parseBinary(Prec + 1);
      auto B = std::make_unique<Expr>(Expr::Kind::Binary);
      B->Op = Op;
      B->LHS = std::move(L);
      B->RHS = std::move(R);
      L = std::move(B);
    }
  }

  std::unique_ptr<Expr> parseUnary() {
    if (isPunct("-") || isPunct("!") || isPunct("*") || isPunct("&")) {
      auto U = std::make_unique<Expr>(Expr::Kind::Unary);
      U->Line = peek().Line;
      U->Op = advance().Text;
      U->LHS = parseUnary();
      return U;
    }
    // Cast: "(int)" or "(double)" followed by a unary expression.
    if (isPunct("(") && (isIdent("int", 1) || isIdent("double", 1)) &&
        isPunct(")", 2)) {
      advance();
      std::string TyName = advance().Text;
      advance();
      auto C = std::make_unique<Expr>(Expr::Kind::CastExpr);
      C->CastTo = TyName == "int" ? CType::makeInt() : CType::makeDouble();
      C->LHS = parseUnary();
      return C;
    }
    return parsePostfix();
  }

  std::unique_ptr<Expr> parsePostfix() {
    auto E = parsePrimary();
    for (;;) {
      if (isPunct("[")) {
        advance();
        auto Idx = parseExpr();
        expectPunct("]");
        auto I = std::make_unique<Expr>(Expr::Kind::Index);
        I->LHS = std::move(E);
        I->RHS = std::move(Idx);
        E = std::move(I);
        continue;
      }
      if (isPunct("(")) {
        advance();
        auto C = std::make_unique<Expr>(Expr::Kind::Call);
        C->LHS = std::move(E);
        if (!isPunct(")")) {
          for (;;) {
            C->Args.push_back(parseExpr());
            if (!consumePunct(","))
              break;
          }
        }
        expectPunct(")");
        E = std::move(C);
        continue;
      }
      return E;
    }
  }

  std::unique_ptr<Expr> parsePrimary() {
    unsigned Line = peek().Line;
    if (peek().K == Tok::Kind::Int) {
      auto E = std::make_unique<Expr>(Expr::Kind::IntLit);
      E->IntValue = advance().IntVal;
      E->Line = Line;
      return E;
    }
    if (peek().K == Tok::Kind::Float) {
      auto E = std::make_unique<Expr>(Expr::Kind::FloatLit);
      E->FloatValue = advance().FloatVal;
      E->Line = Line;
      return E;
    }
    if (peek().K == Tok::Kind::Ident) {
      auto E = std::make_unique<Expr>(Expr::Kind::Var);
      E->Name = advance().Text;
      E->Line = Line;
      return E;
    }
    if (consumePunct("(")) {
      auto E = parseExpr();
      expectPunct(")");
      return E;
    }
    fail("expected an expression");
    return std::make_unique<Expr>(Expr::Kind::IntLit);
  }

  /// Deep copy used when desugaring compound assignment.
  static std::unique_ptr<Expr> cloneExpr(const Expr &E) {
    auto C = std::make_unique<Expr>(E.K);
    C->Line = E.Line;
    C->IntValue = E.IntValue;
    C->FloatValue = E.FloatValue;
    C->Name = E.Name;
    C->Op = E.Op;
    C->CastTo = E.CastTo;
    if (E.LHS)
      C->LHS = cloneExpr(*E.LHS);
    if (E.RHS)
      C->RHS = cloneExpr(*E.RHS);
    for (const auto &A : E.Args)
      C->Args.push_back(cloneExpr(*A));
    return C;
  }

  std::vector<Tok> Toks;
  size_t Cursor = 0;
  std::string Err;
};

} // namespace

std::unique_ptr<TranslationUnit> minic::parseMiniC(const std::string &Source,
                                                   std::string &Error) {
  Lexer L(Source);
  auto Toks = L.lexAll(Error);
  if (!Error.empty())
    return nullptr;
  Parser P(std::move(Toks));
  return P.run(Error);
}
