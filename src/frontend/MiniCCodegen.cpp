#include "frontend/MiniC.h"

#include "ir/IRBuilder.h"
#include "ir/Utils.h"
#include "ir/Verifier.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

using namespace minic;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::CastInst;
using nir::CmpInst;
using nir::Context;
using nir::Function;
using nir::GlobalVariable;
using nir::IRBuilder;
using nir::Type;
using nir::Value;

namespace {

/// A typed IR value during expression lowering.
struct RValue {
  Value *V = nullptr;
  CType Ty;
};

/// A variable's storage: its address and what lives there.
struct Storage {
  Value *Addr = nullptr; ///< alloca or global (ptr-typed)
  CType Ty;              ///< the variable's MiniC type
  bool IsArray = false;  ///< arrays decay to pointers on use
};

class Codegen {
public:
  Codegen(Context &Ctx, const TranslationUnit &TU,
          const std::string &ModuleName)
      : Ctx(Ctx), TU(TU), B(Ctx) {
    M = std::make_unique<nir::Module>(Ctx, ModuleName);
  }

  std::unique_ptr<nir::Module> run(std::string &Error) {
    declareBuiltins();
    for (const auto &G : TU.Globals)
      emitGlobal(G);
    // Declare all functions first so calls can be resolved in any order.
    for (const auto &F : TU.Functions)
      declareFunction(F);
    for (const auto &F : TU.Functions)
      if (F.Body)
        emitFunction(F);
    if (failed()) {
      Error = Err;
      return nullptr;
    }
    return std::move(M);
  }

private:
  bool failed() const { return !Err.empty(); }
  void fail(unsigned Line, const std::string &Msg) {
    if (Err.empty()) {
      std::ostringstream OS;
      OS << "line " << Line << ": " << Msg;
      Err = OS.str();
    }
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  Type *lowerType(const CType &T) {
    if (T.isPointer())
      return Ctx.getPtrTy();
    switch (T.TheBase) {
    case CType::Base::Void:
      return Ctx.getVoidTy();
    case CType::Base::Int:
      return Ctx.getInt64Ty();
    case CType::Base::Double:
      return Ctx.getDoubleTy();
    case CType::Base::Char:
      return Ctx.getInt8Ty();
    case CType::Base::FuncPtr:
      return Ctx.getPtrTy();
    }
    return Ctx.getInt64Ty();
  }

  /// Element IR type for arrays of \p T.
  Type *lowerElemType(const CType &T) { return lowerType(T); }

  //===--------------------------------------------------------------------===//
  // Builtins & declarations
  //===--------------------------------------------------------------------===//

  void declareBuiltins() {
    auto Declare = [&](const char *Name, CType Ret, std::vector<CType> Ps) {
      if (M->getFunction(Name))
        return;
      std::vector<Type *> IRPs;
      for (auto &P : Ps)
        IRPs.push_back(lowerType(P));
      M->createFunction(Ctx.getFunctionTy(lowerType(Ret), IRPs), Name);
      Signatures[Name] = {Ret, std::move(Ps)};
    };
    CType I = CType::makeInt();
    CType D = CType::makeDouble();
    CType V = CType::makeVoid();
    CType P = CType::makeInt().pointerTo();
    Declare("print_i64", V, {I});
    Declare("print_f64", V, {D});
    Declare("print_char", V, {I});
    Declare("malloc", P, {I});
    Declare("free", V, {P});
    Declare("sqrt", D, {D});
    Declare("fabs", D, {D});
    Declare("exp", D, {D});
    Declare("log", D, {D});
    Declare("sin", D, {D});
    Declare("cos", D, {D});
    Declare("pow", D, {D, D});
    Declare("floor", D, {D});
    Declare("clock_ns", I, {});
    Declare("abort_if_false", V, {I});
  }

  void declareFunction(const FunctionDecl &FD) {
    if (Function *Existing = M->getFunction(FD.Name)) {
      (void)Existing; // Re-declaration; signature assumed consistent.
      return;
    }
    std::vector<Type *> Params;
    for (const auto &P : FD.Params)
      Params.push_back(lowerType(P.Ty));
    M->createFunction(Ctx.getFunctionTy(lowerType(FD.RetTy), Params),
                      FD.Name);
    std::vector<CType> PTys;
    for (const auto &P : FD.Params)
      PTys.push_back(P.Ty);
    Signatures[FD.Name] = {FD.RetTy, std::move(PTys)};
  }

  void emitGlobal(const GlobalDecl &GD) {
    Type *Elem = lowerElemType(GD.Ty);
    uint64_t N = GD.ArraySize > 0 ? static_cast<uint64_t>(GD.ArraySize) : 1;
    Type *ValTy = GD.ArraySize > 0 ? Ctx.getArrayTy(Elem, N) : Elem;
    GlobalVariable *G = M->createGlobal(ValTy, GD.Name);

    std::vector<int64_t> Words;
    auto PushValue = [&](long long IV, double FV) {
      if (GD.Ty.isDouble()) {
        int64_t Bits;
        std::memcpy(&Bits, &FV, 8);
        Words.push_back(Bits);
      } else {
        Words.push_back(IV);
      }
    };
    if (GD.HasScalarInit)
      PushValue(GD.ScalarIntInit, GD.ScalarFloatInit);
    for (size_t K = 0; K < GD.IntInit.size(); ++K)
      PushValue(GD.IntInit[K], GD.FloatInit[K]);
    if (!Words.empty())
      G->setInitWords(std::move(Words));

    Storage S;
    S.Addr = G;
    S.Ty = GD.Ty;
    S.IsArray = GD.ArraySize > 0;
    GlobalVars[GD.Name] = S;
  }

  //===--------------------------------------------------------------------===//
  // Function bodies
  //===--------------------------------------------------------------------===//

  void emitFunction(const FunctionDecl &FD) {
    CurFn = M->getFunction(FD.Name);
    CurRetTy = FD.RetTy;
    ScopeStack.clear();
    ScopeStack.emplace_back();
    BreakTargets.clear();
    ContinueTargets.clear();

    BasicBlock *Entry = CurFn->createBlock("entry");
    B.setInsertPoint(Entry);

    // Spill parameters into allocas so mem2reg has uniform input.
    for (unsigned I = 0; I < FD.Params.size(); ++I) {
      const Param &P = FD.Params[I];
      CurFn->getArg(I)->setName(P.Name);
      auto *Slot = B.createAlloca(lowerType(P.Ty), P.Name + ".addr");
      B.createStore(CurFn->getArg(I), Slot);
      Storage S;
      S.Addr = Slot;
      S.Ty = P.Ty;
      currentScope()[P.Name] = S;
    }

    emitStmt(*FD.Body);

    // Implicit return for fall-through paths.
    if (!B.getInsertBlock()->getTerminator()) {
      if (FD.RetTy.isVoid())
        B.createRetVoid();
      else if (FD.RetTy.isDouble())
        B.createRet(B.getDouble(0));
      else
        B.createRet(Ctx.getUndef(lowerType(FD.RetTy)));
    }

    nir::removeUnreachableBlocks(*CurFn);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void emitStmt(const Stmt &S) {
    if (failed())
      return;
    switch (S.K) {
    case Stmt::Kind::Block: {
      ScopeStack.emplace_back();
      for (const auto &Sub : S.Stmts)
        emitStmt(*Sub);
      popScope();
      return;
    }
    case Stmt::Kind::Decl: {
      Storage St;
      St.Ty = S.DeclType;
      if (S.ArraySize > 0) {
        St.IsArray = true;
        St.Addr = B.createAlloca(
            Ctx.getArrayTy(lowerElemType(S.DeclType),
                           static_cast<uint64_t>(S.ArraySize)),
            S.DeclName);
      } else {
        St.Addr = B.createAlloca(lowerType(S.DeclType), S.DeclName);
      }
      if (currentScope().count(S.DeclName)) {
        fail(S.Line, "redeclaration of '" + S.DeclName + "'");
        return;
      }
      currentScope()[S.DeclName] = St;
      if (S.Init) {
        RValue Init = emitExpr(*S.Init);
        Init = coerce(Init, S.DeclType, S.Line);
        B.createStore(Init.V, St.Addr);
      }
      return;
    }
    case Stmt::Kind::ExprStmt:
      emitExpr(*S.E);
      return;
    case Stmt::Kind::If: {
      BasicBlock *ThenBB = CurFn->createBlock("if.then");
      BasicBlock *MergeBB = CurFn->createBlock("if.end");
      BasicBlock *ElseBB =
          S.Else ? CurFn->createBlock("if.else") : MergeBB;
      emitCondBr(*S.Cond, ThenBB, ElseBB);
      B.setInsertPoint(ThenBB);
      emitStmt(*S.Then);
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(MergeBB);
      if (S.Else) {
        B.setInsertPoint(ElseBB);
        emitStmt(*S.Else);
        if (!B.getInsertBlock()->getTerminator())
          B.createBr(MergeBB);
      }
      B.setInsertPoint(MergeBB);
      return;
    }
    case Stmt::Kind::While: {
      BasicBlock *CondBB = CurFn->createBlock("while.cond");
      BasicBlock *BodyBB = CurFn->createBlock("while.body");
      BasicBlock *EndBB = CurFn->createBlock("while.end");
      B.createBr(CondBB);
      B.setInsertPoint(CondBB);
      emitCondBr(*S.Cond, BodyBB, EndBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(CondBB);
      B.setInsertPoint(BodyBB);
      emitStmt(*S.Body);
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(CondBB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      B.setInsertPoint(EndBB);
      return;
    }
    case Stmt::Kind::DoWhile: {
      BasicBlock *BodyBB = CurFn->createBlock("do.body");
      BasicBlock *CondBB = CurFn->createBlock("do.cond");
      BasicBlock *EndBB = CurFn->createBlock("do.end");
      B.createBr(BodyBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(CondBB);
      B.setInsertPoint(BodyBB);
      emitStmt(*S.Body);
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(CondBB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      B.setInsertPoint(CondBB);
      emitCondBr(*S.Cond, BodyBB, EndBB);
      B.setInsertPoint(EndBB);
      return;
    }
    case Stmt::Kind::For: {
      ScopeStack.emplace_back();
      if (S.ForInit)
        emitStmt(*S.ForInit);
      BasicBlock *CondBB = CurFn->createBlock("for.cond");
      BasicBlock *BodyBB = CurFn->createBlock("for.body");
      BasicBlock *StepBB = CurFn->createBlock("for.step");
      BasicBlock *EndBB = CurFn->createBlock("for.end");
      B.createBr(CondBB);
      B.setInsertPoint(CondBB);
      if (S.Cond)
        emitCondBr(*S.Cond, BodyBB, EndBB);
      else
        B.createBr(BodyBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(StepBB);
      B.setInsertPoint(BodyBB);
      emitStmt(*S.Body);
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(StepBB);
      B.setInsertPoint(StepBB);
      if (S.E)
        emitExpr(*S.E);
      B.createBr(CondBB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      popScope();
      B.setInsertPoint(EndBB);
      return;
    }
    case Stmt::Kind::Return: {
      if (S.E) {
        RValue V = emitExpr(*S.E);
        V = coerce(V, CurRetTy, S.Line);
        B.createRet(V.V);
      } else {
        B.createRetVoid();
      }
      startDeadBlock();
      return;
    }
    case Stmt::Kind::Break: {
      if (BreakTargets.empty()) {
        fail(S.Line, "'break' outside a loop");
        return;
      }
      B.createBr(BreakTargets.back());
      startDeadBlock();
      return;
    }
    case Stmt::Kind::Continue: {
      if (ContinueTargets.empty()) {
        fail(S.Line, "'continue' outside a loop");
        return;
      }
      B.createBr(ContinueTargets.back());
      startDeadBlock();
      return;
    }
    }
  }

  /// After an unconditional transfer, subsequent statements in the same
  /// source block are unreachable; park them in a fresh block that
  /// removeUnreachableBlocks will discard.
  void startDeadBlock() {
    BasicBlock *Dead = CurFn->createBlock("dead");
    B.setInsertPoint(Dead);
  }

  //===--------------------------------------------------------------------===//
  // Conditions (short-circuit aware)
  //===--------------------------------------------------------------------===//

  void emitCondBr(const Expr &E, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    if (E.K == Expr::Kind::Binary && E.Op == "&&") {
      BasicBlock *Mid = CurFn->createBlock("and.rhs");
      emitCondBr(*E.LHS, Mid, FalseBB);
      B.setInsertPoint(Mid);
      emitCondBr(*E.RHS, TrueBB, FalseBB);
      return;
    }
    if (E.K == Expr::Kind::Binary && E.Op == "||") {
      BasicBlock *Mid = CurFn->createBlock("or.rhs");
      emitCondBr(*E.LHS, TrueBB, Mid);
      B.setInsertPoint(Mid);
      emitCondBr(*E.RHS, TrueBB, FalseBB);
      return;
    }
    if (E.K == Expr::Kind::Unary && E.Op == "!") {
      emitCondBr(*E.LHS, FalseBB, TrueBB);
      return;
    }
    Value *C = emitBool(E);
    B.createCondBr(C, TrueBB, FalseBB);
  }

  /// Lowers an expression to an i1.
  Value *emitBool(const Expr &E) {
    // Comparisons produce i1 directly.
    if (E.K == Expr::Kind::Binary && isComparisonOp(E.Op))
      return emitComparison(E);
    RValue V = emitExpr(E);
    if (V.Ty.isDouble())
      return B.createCmp(CmpInst::Pred::FNE, V.V, B.getDouble(0));
    if (V.V->getType() == Ctx.getInt1Ty())
      return V.V;
    Value *IntV = toInt64(V);
    return B.createCmp(CmpInst::Pred::NE, IntV, B.getInt64(0));
  }

  static bool isComparisonOp(const std::string &Op) {
    return Op == "==" || Op == "!=" || Op == "<" || Op == "<=" ||
           Op == ">" || Op == ">=";
  }

  Value *emitComparison(const Expr &E) {
    RValue L = emitExpr(*E.LHS);
    RValue R = emitExpr(*E.RHS);
    bool FP = L.Ty.isDouble() || R.Ty.isDouble();
    if (FP) {
      L = coerce(L, CType::makeDouble(), E.Line);
      R = coerce(R, CType::makeDouble(), E.Line);
    } else {
      L.V = toInt64(L);
      R.V = toInt64(R);
    }
    CmpInst::Pred P;
    if (E.Op == "==")
      P = FP ? CmpInst::Pred::FEQ : CmpInst::Pred::EQ;
    else if (E.Op == "!=")
      P = FP ? CmpInst::Pred::FNE : CmpInst::Pred::NE;
    else if (E.Op == "<")
      P = FP ? CmpInst::Pred::FLT : CmpInst::Pred::SLT;
    else if (E.Op == "<=")
      P = FP ? CmpInst::Pred::FLE : CmpInst::Pred::SLE;
    else if (E.Op == ">")
      P = FP ? CmpInst::Pred::FGT : CmpInst::Pred::SGT;
    else
      P = FP ? CmpInst::Pred::FGE : CmpInst::Pred::SGE;
    return B.createCmp(P, L.V, R.V);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Widens chars/bools to i64 for arithmetic.
  Value *toInt64(const RValue &V) {
    Type *Ty = V.V->getType();
    if (Ty == Ctx.getInt64Ty() || Ty->isPointer() || Ty->isFunction())
      return V.V;
    if (Ty == Ctx.getInt8Ty() || Ty == Ctx.getInt1Ty() ||
        Ty == Ctx.getInt32Ty())
      return B.createCast(CastInst::Op::ZExt, V.V, Ctx.getInt64Ty());
    return V.V;
  }

  /// Converts \p V to MiniC type \p To (int<->double, char widening,
  /// pointer passthrough).
  RValue coerce(RValue V, const CType &To, unsigned Line) {
    Type *ToIR = lowerType(To);
    Type *FromIR = V.V->getType();
    if (FromIR == ToIR || To.isPointer()) {
      V.Ty = To;
      return V;
    }
    if (To.isDouble() && !V.Ty.isDouble()) {
      Value *I = toInt64(V);
      V.V = B.createCast(CastInst::Op::SIToFP, I, Ctx.getDoubleTy());
      V.Ty = To;
      return V;
    }
    if (!To.isDouble() && V.Ty.isDouble()) {
      V.V = B.createCast(CastInst::Op::FPToSI, V.V, Ctx.getInt64Ty());
      if (ToIR == Ctx.getInt8Ty())
        V.V = B.createCast(CastInst::Op::Trunc, V.V, Ctx.getInt8Ty());
      V.Ty = To;
      return V;
    }
    if (ToIR == Ctx.getInt64Ty()) {
      V.V = toInt64(V);
      V.Ty = To;
      return V;
    }
    if (ToIR == Ctx.getInt8Ty() && FromIR == Ctx.getInt64Ty()) {
      V.V = B.createCast(CastInst::Op::Trunc, V.V, Ctx.getInt8Ty());
      V.Ty = To;
      return V;
    }
    if (ToIR == Ctx.getInt1Ty()) {
      V.V = B.createCmp(CmpInst::Pred::NE, toInt64(V), B.getInt64(0));
      V.Ty = To;
      return V;
    }
    fail(Line, "unsupported conversion");
    return V;
  }

  /// The address of an lvalue expression and the pointee's type.
  RValue emitLValue(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Var: {
      const Storage *S = lookup(E.Name);
      if (!S) {
        fail(E.Line, "unknown variable '" + E.Name + "'");
        return {Ctx.getUndef(Ctx.getPtrTy()), CType::makeInt()};
      }
      if (S->IsArray) {
        fail(E.Line, "array '" + E.Name + "' is not assignable");
        return {Ctx.getUndef(Ctx.getPtrTy()), CType::makeInt()};
      }
      return {S->Addr, S->Ty};
    }
    case Expr::Kind::Unary:
      if (E.Op == "*") {
        RValue P = emitExpr(*E.LHS);
        if (!P.Ty.isPointer()) {
          fail(E.Line, "dereference of a non-pointer");
          return {Ctx.getUndef(Ctx.getPtrTy()), CType::makeInt()};
        }
        return {P.V, P.Ty.pointee()};
      }
      break;
    case Expr::Kind::Index: {
      RValue Base = emitIndexedAddress(E);
      return Base;
    }
    default:
      break;
    }
    fail(E.Line, "expression is not assignable");
    return {Ctx.getUndef(Ctx.getPtrTy()), CType::makeInt()};
  }

  /// Address computation for base[idx].
  RValue emitIndexedAddress(const Expr &E) {
    RValue Base = emitExpr(*E.LHS);
    if (!Base.Ty.isPointer()) {
      fail(E.Line, "indexing a non-pointer value");
      return {Ctx.getUndef(Ctx.getPtrTy()), CType::makeInt()};
    }
    RValue Idx = emitExpr(*E.RHS);
    Value *IdxV = toInt64(Idx);
    CType ElemTy = Base.Ty.pointee();
    uint64_t Scale = ElemTy.elementSize();
    Value *Addr = B.createGEP(Base.V, IdxV, Scale);
    return {Addr, ElemTy};
  }

  const Storage *lookup(const std::string &Name) const {
    for (auto It = ScopeStack.rbegin(); It != ScopeStack.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    auto G = GlobalVars.find(Name);
    if (G != GlobalVars.end())
      return &G->second;
    return nullptr;
  }

  std::map<std::string, Storage> &currentScope() {
    assert(!ScopeStack.empty() && "no active scope");
    return ScopeStack.back();
  }

  void popScope() {
    assert(!ScopeStack.empty() && "scope stack underflow");
    ScopeStack.pop_back();
  }

  RValue emitExpr(const Expr &E) {
    if (failed())
      return {Ctx.getUndef(Ctx.getInt64Ty()), CType::makeInt()};
    switch (E.K) {
    case Expr::Kind::IntLit:
      return {Ctx.getInt64(E.IntValue), CType::makeInt()};
    case Expr::Kind::FloatLit:
      return {Ctx.getConstantFP(E.FloatValue), CType::makeDouble()};
    case Expr::Kind::Var: {
      // A function name used as a value becomes a function pointer.
      if (!lookup(E.Name)) {
        if (Function *F = M->getFunction(E.Name)) {
          CType FP;
          FP.TheBase = CType::Base::FuncPtr;
          auto SigIt = Signatures.find(E.Name);
          if (SigIt != Signatures.end()) {
            FP.RetType = std::make_shared<CType>(SigIt->second.first);
            FP.ParamTypes = SigIt->second.second;
          }
          Value *AsPtr =
              B.createCast(CastInst::Op::Bitcast, F, Ctx.getPtrTy());
          return {AsPtr, FP};
        }
        fail(E.Line, "unknown identifier '" + E.Name + "'");
        return {Ctx.getUndef(Ctx.getInt64Ty()), CType::makeInt()};
      }
      const Storage *S = lookup(E.Name);
      if (S->IsArray) {
        // Array decays to a pointer to its first element.
        return {S->Addr, S->Ty.pointerTo()};
      }
      Value *L = B.createLoad(lowerType(S->Ty), S->Addr, E.Name);
      return {L, S->Ty};
    }
    case Expr::Kind::Unary: {
      if (E.Op == "-") {
        RValue V = emitExpr(*E.LHS);
        if (V.Ty.isDouble())
          return {B.createBinary(BinaryInst::Op::FSub, B.getDouble(0), V.V),
                  V.Ty};
        return {B.createSub(B.getInt64(0), toInt64(V)), CType::makeInt()};
      }
      if (E.Op == "!") {
        Value *C = emitBool(*E.LHS);
        Value *NotC = B.createBinary(BinaryInst::Op::Xor,
                                     B.createCast(CastInst::Op::ZExt, C,
                                                  Ctx.getInt64Ty()),
                                     B.getInt64(1));
        return {NotC, CType::makeInt()};
      }
      if (E.Op == "*") {
        RValue LV = emitLValue(E);
        Value *L = B.createLoad(lowerType(LV.Ty), LV.V);
        return {L, LV.Ty};
      }
      if (E.Op == "&") {
        RValue LV = emitLValue(*E.LHS);
        return {LV.V, LV.Ty.pointerTo()};
      }
      fail(E.Line, "unknown unary operator '" + E.Op + "'");
      return {Ctx.getUndef(Ctx.getInt64Ty()), CType::makeInt()};
    }
    case Expr::Kind::Binary:
      return emitBinary(E);
    case Expr::Kind::Assign: {
      RValue LV = emitLValue(*E.LHS);
      RValue RV = emitExpr(*E.RHS);
      RV = coerce(RV, LV.Ty, E.Line);
      B.createStore(RV.V, LV.V);
      return RV;
    }
    case Expr::Kind::Index: {
      RValue Addr = emitIndexedAddress(E);
      Value *L = B.createLoad(lowerType(Addr.Ty), Addr.V);
      RValue Out{L, Addr.Ty};
      return Out;
    }
    case Expr::Kind::Call:
      return emitCall(E);
    case Expr::Kind::CastExpr: {
      RValue V = emitExpr(*E.LHS);
      return coerce(V, E.CastTo, E.Line);
    }
    }
    fail(E.Line, "unsupported expression");
    return {Ctx.getUndef(Ctx.getInt64Ty()), CType::makeInt()};
  }

  RValue emitBinary(const Expr &E) {
    // Logical operators in value position: compute via control flow.
    if (E.Op == "&&" || E.Op == "||") {
      BasicBlock *RhsBB = CurFn->createBlock("logic.rhs");
      BasicBlock *EndBB = CurFn->createBlock("logic.end");
      Value *LC = emitBool(*E.LHS);
      BasicBlock *LhsEnd = B.getInsertBlock();
      if (E.Op == "&&")
        B.createCondBr(LC, RhsBB, EndBB);
      else
        B.createCondBr(LC, EndBB, RhsBB);
      B.setInsertPoint(RhsBB);
      Value *RC = emitBool(*E.RHS);
      Value *RInt = B.createCast(CastInst::Op::ZExt, RC, Ctx.getInt64Ty());
      BasicBlock *RhsEnd = B.getInsertBlock();
      B.createBr(EndBB);
      B.setInsertPoint(EndBB);
      auto *Phi = B.createPhi(Ctx.getInt64Ty(), "logic");
      Phi->addIncoming(B.getInt64(E.Op == "&&" ? 0 : 1), LhsEnd);
      Phi->addIncoming(RInt, RhsEnd);
      return {Phi, CType::makeInt()};
    }

    if (isComparisonOp(E.Op)) {
      Value *C = emitComparison(E);
      Value *I = B.createCast(CastInst::Op::ZExt, C, Ctx.getInt64Ty());
      return {I, CType::makeInt()};
    }

    RValue L = emitExpr(*E.LHS);
    RValue R = emitExpr(*E.RHS);

    // Pointer arithmetic: p + i / p - i.
    if (L.Ty.isPointer() && (E.Op == "+" || E.Op == "-")) {
      Value *Idx = toInt64(R);
      if (E.Op == "-")
        Idx = B.createSub(B.getInt64(0), Idx);
      Value *Addr = B.createGEP(L.V, Idx, L.Ty.pointee().elementSize());
      return {Addr, L.Ty};
    }

    bool FP = L.Ty.isDouble() || R.Ty.isDouble();
    if (FP) {
      L = coerce(L, CType::makeDouble(), E.Line);
      R = coerce(R, CType::makeDouble(), E.Line);
      BinaryInst::Op Op;
      if (E.Op == "+")
        Op = BinaryInst::Op::FAdd;
      else if (E.Op == "-")
        Op = BinaryInst::Op::FSub;
      else if (E.Op == "*")
        Op = BinaryInst::Op::FMul;
      else if (E.Op == "/")
        Op = BinaryInst::Op::FDiv;
      else {
        fail(E.Line, "operator '" + E.Op + "' not valid on double");
        return L;
      }
      return {B.createBinary(Op, L.V, R.V), CType::makeDouble()};
    }

    Value *LI = toInt64(L);
    Value *RI = toInt64(R);
    BinaryInst::Op Op;
    if (E.Op == "+")
      Op = BinaryInst::Op::Add;
    else if (E.Op == "-")
      Op = BinaryInst::Op::Sub;
    else if (E.Op == "*")
      Op = BinaryInst::Op::Mul;
    else if (E.Op == "/")
      Op = BinaryInst::Op::SDiv;
    else if (E.Op == "%")
      Op = BinaryInst::Op::SRem;
    else if (E.Op == "&")
      Op = BinaryInst::Op::And;
    else if (E.Op == "|")
      Op = BinaryInst::Op::Or;
    else if (E.Op == "^")
      Op = BinaryInst::Op::Xor;
    else if (E.Op == "<<")
      Op = BinaryInst::Op::Shl;
    else if (E.Op == ">>")
      Op = BinaryInst::Op::AShr;
    else {
      fail(E.Line, "unknown binary operator '" + E.Op + "'");
      return L;
    }
    return {B.createBinary(Op, LI, RI), CType::makeInt()};
  }

  RValue emitCall(const Expr &E) {
    // Direct call: callee is a bare function name.
    if (E.LHS->K == Expr::Kind::Var && !lookup(E.LHS->Name)) {
      Function *F = M->getFunction(E.LHS->Name);
      if (!F) {
        fail(E.Line, "call to unknown function '" + E.LHS->Name + "'");
        return {Ctx.getUndef(Ctx.getInt64Ty()), CType::makeInt()};
      }
      auto SigIt = Signatures.find(E.LHS->Name);
      std::vector<Value *> Args;
      for (size_t I = 0; I < E.Args.size(); ++I) {
        RValue A = emitExpr(*E.Args[I]);
        if (SigIt != Signatures.end() && I < SigIt->second.second.size())
          A = coerce(A, SigIt->second.second[I], E.Line);
        else
          A.V = toInt64(A);
        Args.push_back(A.V);
      }
      Value *R = B.createCall(F, Args);
      CType RetTy = SigIt != Signatures.end() ? SigIt->second.first
                                              : CType::makeInt();
      return {R, RetTy};
    }

    // Indirect call through a function-pointer value.
    RValue Callee = emitExpr(*E.LHS);
    if (Callee.Ty.TheBase != CType::Base::FuncPtr) {
      fail(E.Line, "called value is not a function pointer");
      return {Ctx.getUndef(Ctx.getInt64Ty()), CType::makeInt()};
    }
    CType RetTy = Callee.Ty.RetType ? *Callee.Ty.RetType : CType::makeInt();
    std::vector<Value *> Args;
    for (size_t I = 0; I < E.Args.size(); ++I) {
      RValue A = emitExpr(*E.Args[I]);
      if (I < Callee.Ty.ParamTypes.size())
        A = coerce(A, Callee.Ty.ParamTypes[I], E.Line);
      else
        A.V = toInt64(A);
      Args.push_back(A.V);
    }
    Value *R = B.createIndirectCall(lowerType(RetTy), Callee.V, Args);
    return {R, RetTy};
  }

  Context &Ctx;
  const TranslationUnit &TU;
  std::unique_ptr<nir::Module> M;
  IRBuilder B;

  Function *CurFn = nullptr;
  CType CurRetTy;
  std::vector<std::map<std::string, Storage>> ScopeStack;
  std::map<std::string, Storage> GlobalVars;
  std::map<std::string, std::pair<CType, std::vector<CType>>> Signatures;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
  std::string Err;
};

} // namespace

std::unique_ptr<nir::Module> minic::codegen(nir::Context &Ctx,
                                            const TranslationUnit &TU,
                                            const std::string &ModuleName,
                                            std::string &Error) {
  Codegen CG(Ctx, TU, ModuleName);
  return CG.run(Error);
}

std::unique_ptr<nir::Module> minic::compileMiniC(nir::Context &Ctx,
                                                 const std::string &Source,
                                                 std::string &Error,
                                                 CompileOptions Opts) {
  auto TU = parseMiniC(Source, Error);
  if (!TU)
    return nullptr;
  auto M = codegen(Ctx, *TU, Opts.ModuleName, Error);
  if (!M)
    return nullptr;
  if (Opts.RunMem2Reg)
    promoteMemoryToRegisters(*M);
  auto Problems = nir::verifyModule(*M);
  if (!Problems.empty()) {
    Error = "internal error: generated IR fails verification: " + Problems[0];
    return nullptr;
  }
  return M;
}

std::unique_ptr<nir::Module> minic::compileMiniCOrDie(nir::Context &Ctx,
                                                      const std::string &Source,
                                                      CompileOptions Opts) {
  std::string Error;
  auto M = compileMiniC(Ctx, Source, Error, Opts);
  if (!M) {
    std::fprintf(stderr, "MiniC compile error: %s\n", Error.c_str());
    std::abort();
  }
  return M;
}
