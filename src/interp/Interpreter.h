//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionEngine: an interpreter for NIR. It is the "target machine" of
/// this reproduction — profilers observe it and the parallel runtime
/// executes transformed task functions on it from multiple host threads.
///
/// The engine is a two-tier optimizing interpreter. Functions are lazily
/// decoded into a flat threaded-code array: decode time performs constant
/// folding into immediate-operand opcodes, GEP flattening, phi elimination
/// into per-edge move lists, and superinstruction fusion (cmp+br, gep+load,
/// gep+store, mul+add). Execution uses computed-goto threaded dispatch when
/// the compiler supports it (NOELLE_INTERP_HAVE_CGOTO, probed by CMake)
/// with a portable switch fallback; installing an ExecutionObserver routes
/// execution through an unbatched tier that fires callbacks in program
/// order. Retired-instruction accounting is byte-identical across tiers
/// and optimization levels, which is what pins Figure-5 DispatchRecords.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_INTERPRETER_H
#define INTERP_INTERPRETER_H

#include "ir/Instructions.h"
#include "ir/Module.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace nir {

class ThreadPool;
class QueueRegistry;

/// A runtime value: one 64-bit slot interpreted per the static type.
union RuntimeValue {
  int64_t I;
  double F;
  uint64_t P; ///< Host address, or a tagged function reference.

  RuntimeValue() : I(0) {}
  static RuntimeValue ofInt(int64_t V) {
    RuntimeValue R;
    R.I = V;
    return R;
  }
  static RuntimeValue ofFloat(double V) {
    RuntimeValue R;
    R.F = V;
    return R;
  }
  static RuntimeValue ofPtr(uint64_t V) {
    RuntimeValue R;
    R.P = V;
    return R;
  }
};

class ExecutionEngine;

/// Observation points used by NOELLE's profilers. All callbacks run on
/// the executing thread; implementations must be cheap.
///
/// Installing an observer switches the engine to its unbatched execution
/// tier: onBlockExecuted / onBranchExecuted fire in program order, once
/// per dynamic block / conditional branch, exactly as in the pre-fusion
/// engine. Instruction accounting is unchanged by the tier switch.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver() = default;
  /// A basic block began executing.
  virtual void onBlockExecuted(const BasicBlock *BB) {}
  /// A conditional branch executed; \p Taken is the successor index.
  virtual void onBranchExecuted(const BranchInst *Br, unsigned Taken) {}
  /// A call is about to run (direct calls to defined functions only).
  virtual void onCallExecuted(const CallInst *Call, const Function *Callee) {}
  /// A load of \p Bytes bytes from \p Addr executed. \p I is the source
  /// instruction (post-decode instructions report their original).
  virtual void onLoadExecuted(const Instruction *I, uint64_t Addr,
                              unsigned Bytes) {}
  /// A store of \p Bytes bytes to \p Addr executed.
  virtual void onStoreExecuted(const Instruction *I, uint64_t Addr,
                               unsigned Bytes) {}
};

/// External (declared) function implementation. Receives the evaluated
/// arguments and the engine for memory access.
using ExternalFn =
    std::function<RuntimeValue(ExecutionEngine &, const CallInst *,
                               const std::vector<RuntimeValue> &)>;

/// Per-parallel-region accounting used by the performance model (the
/// evaluation host may have a single core, so Figure-5 speedups are
/// computed from per-task instruction counts rather than wall clock).
struct DispatchRecord {
  uint64_t NumTasks = 0;
  uint64_t MaxTaskInstructions = 0;   ///< critical path of the region
  uint64_t TotalTaskInstructions = 0; ///< work moved into tasks
  uint64_t MaxTaskSyncOps = 0;        ///< ss-wait/queue ops on that path
  uint64_t TotalTaskSyncOps = 0;
  /// Instructions retired inside sequential segments (wait..signal),
  /// summed over all tasks: a lower bound on HELIX's serialized time.
  uint64_t TotalSegmentInstructions = 0;
  /// Name of the dispatched task function ("fn.doall3", "fn.helix1",
  /// "fn.dswp2.pipeline", ...). Provenance only — the planner's measured-
  /// speedup feedback maps records back to plan entries through it; the
  /// performance model never reads it, so the modeled numbers stay
  /// byte-identical to records produced without it.
  std::string TaskName;
};

/// Interprets a Module. Thread-safe for concurrent runFunction calls:
/// decoding is guarded by a mutex, heap allocation is atomic, and frames
/// are thread-local by construction.
class ExecutionEngine {
public:
  /// Dispatch-loop selection, mostly for benchmarking the tiers against
  /// each other; Auto picks threaded dispatch when the build has it.
  enum class DispatchMode { Auto, Threaded, Switch };

  struct Options {
    uint64_t HeapBytes = 64ull << 20; ///< malloc arena size
    uint64_t MaxCallDepth = 4096;
    uint64_t MaxInstructions = 0; ///< 0 = unlimited; else trap guard
    /// Decode-time optimization: constant folding into immediate-operand
    /// opcodes, GEP flattening, phi edge-move sequentialization, and
    /// superinstruction fusion. Off decodes one opcode per NIR
    /// instruction (the reference shape); results, output, and retired-
    /// instruction counts are identical either way. The compile-time
    /// default flips with -DNOELLE_INTERP_NOOPT=ON.
#ifdef NOELLE_INTERP_NOOPT
    bool DecodeOpt = false;
#else
    bool DecodeOpt = true;
#endif
    DispatchMode Dispatch = DispatchMode::Auto;
  };

  /// Decoded threaded-code form of a function (defined in the .cpp;
  /// public only so decode-time metadata can point at cache slots).
  struct DecodedFunction;

  /// Opaque handle to a decoded function, so callers that enter the same
  /// function many times (the parallel runtime's task entry path) can
  /// resolve the decode cache once per dispatch instead of once per task
  /// invocation.
  using PreparedFunction = DecodedFunction *;

  /// True when this build selected computed-goto threaded dispatch
  /// (DispatchMode::Threaded is honored; otherwise it falls back to the
  /// portable switch loop).
  static bool hasThreadedDispatch();

  explicit ExecutionEngine(Module &M) : ExecutionEngine(M, Options{}) {}
  ExecutionEngine(Module &M, Options Opts);
  ~ExecutionEngine();

  Module &getModule() const { return M; }

  /// Runs \p F with the given arguments and returns its result (undefined
  /// slot if void).
  RuntimeValue runFunction(Function *F,
                           const std::vector<RuntimeValue> &Args);

  /// Runs @main() and returns its integer result.
  int64_t runMain();

  /// Decodes \p F now (under the decode lock if needed) and returns a
  /// handle that runPrepared accepts without any cache lookup.
  PreparedFunction prepare(Function *F);
  RuntimeValue runPrepared(PreparedFunction P,
                           const std::vector<RuntimeValue> &Args);

  /// Registers an implementation for a declared function; overrides the
  /// built-in library for that name.
  void registerExternal(const std::string &Name, ExternalFn Fn);

  /// Installs (or clears, with null) the profiling observer.
  void setObserver(ExecutionObserver *O) { Observer = O; }

  /// Total instructions retired across all threads since construction.
  uint64_t getInstructionsExecuted() const { return InstructionsRetired; }

  /// Instructions retired by the calling thread (reset + read around a
  /// task to attribute work to it).
  static void resetThreadRetired();
  static uint64_t readThreadRetired();

  /// Parallel-region accounting (appended by the parallel runtime).
  void recordDispatch(const DispatchRecord &R);
  std::vector<DispatchRecord> getDispatchRecords() const;
  void clearDispatchRecords();

  /// The engine's persistent worker pool (created on first use, workers
  /// stay alive until the engine dies). The parallel runtime dispatches
  /// parallel regions through it instead of spawning threads.
  ThreadPool &getThreadPool();

  /// Per-engine owner of the DSWP queues created by noelle_queue_create;
  /// destroyed with the engine.
  QueueRegistry &getQueueRegistry();

  /// Bump-allocates \p Bytes from the shared heap (the engine's malloc).
  uint64_t heapAlloc(uint64_t Bytes);

  /// Address of a global's storage.
  uint64_t getGlobalAddress(const GlobalVariable *G) const;

  /// True if [Addr, Addr+Bytes) lies inside memory this engine manages
  /// (globals, heap, or a live frame). Used by the CARAT guard runtime.
  bool isValidAddress(uint64_t Addr, uint64_t Bytes) const;

  /// Encodes a Function as a runtime pointer value (for function
  /// pointers stored in memory) and decodes it back.
  uint64_t encodeFunction(const Function *F) const;
  Function *decodeFunction(uint64_t Encoded) const;

  /// Captured output of print_* library calls (tests compare this).
  const std::string &getOutput() const { return Output; }
  void appendOutput(const std::string &S);
  void clearOutput() { Output.clear(); }

private:
  DecodedFunction &getDecoded(Function *F);
  /// Tier selector: observer installed -> observed switch loop; else the
  /// threaded loop when available and not overridden by Options.
  RuntimeValue execute(DecodedFunction &DF,
                       const std::vector<RuntimeValue> &Args,
                       unsigned Depth);
  RuntimeValue execThreaded(DecodedFunction &DF,
                            const std::vector<RuntimeValue> &Args,
                            unsigned Depth);
  RuntimeValue execSwitch(DecodedFunction &DF,
                          const std::vector<RuntimeValue> &Args,
                          unsigned Depth);
  RuntimeValue execObserved(DecodedFunction &DF,
                            const std::vector<RuntimeValue> &Args,
                            unsigned Depth);
  RuntimeValue callExternal(Function *F, const CallInst *Call,
                            const std::vector<RuntimeValue> &Args);
  /// Returns the dense slot index for external name \p Name, assigning a
  /// fresh (empty) slot on first sight. Caller holds DecodeMutex.
  uint32_t externalIdFor(const std::string &Name);
  void installDefaultLibrary();

  Module &M;
  Options Opts;

  std::vector<uint8_t> GlobalStorage;
  std::unordered_map<const GlobalVariable *, uint64_t> GlobalAddr;

  std::vector<uint8_t> Heap;
  std::atomic<uint64_t> HeapTop{0};

  /// Externals are resolved to dense indices at decode time so the hot
  /// call path does a vector read instead of a by-name map lookup.
  /// Registration (cold) must happen before execution starts; a deque
  /// keeps slot references stable as names are added.
  std::unordered_map<std::string, uint32_t> ExternalIdByName;
  std::deque<ExternalFn> ExternalTable;

  /// Decoded-function cache. The dense id table is the lock-free
  /// double-checked read path (slot published with release ordering
  /// after decoding completes); the overflow map covers functions
  /// created after engine construction. DecodeMutex guards decoding,
  /// the overflow map, and the external-name table.
  std::unordered_map<const Function *, uint64_t> FunctionIds;
  std::vector<Function *> FunctionById;
  std::vector<std::unique_ptr<DecodedFunction>> DecodedStore;
  std::unique_ptr<std::atomic<DecodedFunction *>[]> DecodedById;
  std::map<const Function *, DecodedFunction *> DecodedOverflow;
  mutable std::mutex DecodeMutex;
  std::mutex OutputMutex;

  /// Lazily created runtime state (see getThreadPool/getQueueRegistry).
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<QueueRegistry> Queues;
  std::mutex RuntimeStateMutex;

  ExecutionObserver *Observer = nullptr;
  std::atomic<uint64_t> InstructionsRetired{0};
  std::string Output;
  mutable std::mutex DispatchMutex;
  std::vector<DispatchRecord> Dispatches;
};

} // namespace nir

#endif // INTERP_INTERPRETER_H
