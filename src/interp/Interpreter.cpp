#include "interp/Interpreter.h"

#include "runtime/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

using namespace nir;
namespace telemetry = noelle::telemetry;

namespace {

/// Tag prefix for function values stored in runtime slots. Host heap
/// addresses never carry the top byte 0xFE.
constexpr uint64_t FunctionTag = 0xFE00000000000000ull;

/// Live stack-frame memory regions, for CARAT's validity checks.
struct FrameRegistry {
  std::mutex Mutex;
  std::set<std::pair<uint64_t, uint64_t>> Regions; // (start, size)

  void add(uint64_t Start, uint64_t Size) {
    if (!Size)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    Regions.insert({Start, Size});
  }
  void remove(uint64_t Start, uint64_t Size) {
    if (!Size)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    Regions.erase({Start, Size});
  }
  bool contains(uint64_t Addr, uint64_t Bytes) {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Start, Size] : Regions)
      if (Addr >= Start && Addr + Bytes <= Start + Size)
        return true;
    return false;
  }
};

FrameRegistry &frameRegistry() {
  static FrameRegistry R;
  return R;
}

thread_local uint64_t ThreadRetired = 0;

} // namespace

//===----------------------------------------------------------------------===//
// Decoded representation: flat threaded code
//===----------------------------------------------------------------------===//

namespace nir {

namespace {

enum class Opc : uint16_t {
#define NIR_OPCODE(name) name,
#include "interp/Opcodes.def"
};

inline Opc opcAdd(Opc Base, unsigned Off) {
  return static_cast<Opc>(static_cast<uint16_t>(Base) + Off);
}

/// One pooled phi-edge move: R[Dst] = R[Src].
struct Move {
  uint32_t Dst;
  uint32_t Src;
};

/// One decoded instruction. Operand fields address the unified register
/// file ([0, NumRegs) SSA slots, then one scratch slot, then the constant
/// pool); control-flow fields hold both the successor block index (for
/// the observer tier) and the resolved pc (fixed up after emission).
struct DInst {
  Opc Op;
  int32_t Dst = -1;
  uint32_t A = 0, B = 0, C = 0;
  uint32_t Scl = 0;
  int64_t Imm = 0;
  int32_t S0 = -1, S1 = -1;                    ///< branch target pcs
  uint32_t T0 = 0, T1 = 0;                     ///< successor block indices
  uint32_t M0B = 0, M0E = 0, M1B = 0, M1E = 0; ///< edge-move ranges
  uint32_t ArgsB = 0, ArgsE = 0;               ///< call args in ArgPool
  uint64_t BlockRetire = 0; ///< terminators: original block size
  uint64_t OrigSoFar = 0;   ///< calls: phis + original non-phi idx + 1
  const Instruction *Orig = nullptr;
  Function *DirectCallee = nullptr;
  std::atomic<ExecutionEngine::DecodedFunction *> *CalleeSlot = nullptr;
  int32_t ExternalId = -1;
};

} // namespace

struct ExecutionEngine::DecodedFunction {
  Function *F = nullptr;
  std::vector<DInst> Code;
  std::vector<Move> Moves;          ///< pooled phi-edge moves
  std::vector<uint32_t> ArgPool;    ///< pooled call-argument registers
  std::vector<RuntimeValue> Consts; ///< decode-time constant pool
  std::vector<const BasicBlock *> BlockBB; ///< block index -> IR block
  std::vector<uint32_t> BlockPc;           ///< block index -> first pc
  /// Fused superinstructions emitted into each block. The observed tier
  /// charges this to the telemetry fire counter on block entry (the fast
  /// tiers never read it, so their code is untouched).
  std::vector<uint32_t> BlockFused;
  uint32_t NumRegs = 0;  ///< args + value-producing instructions
  uint32_t FileSize = 0; ///< NumRegs + 1 scratch + constant pool
  uint64_t FrameBytes = 0;
  /// True when edge moves were sequentialized at decode time (apply in
  /// order); false applies simultaneous-assignment semantics at runtime.
  bool SeqMoves = false;
};

//===----------------------------------------------------------------------===//
// Decode-time arithmetic: these replicate the execution handlers exactly,
// so a folded result is bit-identical to the value the loop would compute.
//===----------------------------------------------------------------------===//

namespace {

uint8_t memSizeOf(const Type *Ty) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
  case Type::Kind::Int8:
    return 1;
  case Type::Kind::Int32:
    return 4;
  default:
    return 8;
  }
}

inline double immF(int64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}

inline uint64_t bitsOfF(double D) {
  uint64_t B;
  std::memcpy(&B, &D, 8);
  return B;
}

/// Signed division with the divide-by-zero -> 0 convention; INT64_MIN/-1
/// wraps (two's complement) instead of trapping.
inline int64_t sdivW(int64_t L, int64_t R) {
  if (R == 0)
    return 0;
  if (R == -1)
    return static_cast<int64_t>(0 - static_cast<uint64_t>(L));
  return L / R;
}

inline int64_t sremW(int64_t L, int64_t R) {
  if (R == 0 || R == -1)
    return 0;
  return L % R;
}

uint64_t foldBinary(BinaryInst::Op Op, uint64_t LB, uint64_t RB) {
  const int64_t L = static_cast<int64_t>(LB), R = static_cast<int64_t>(RB);
  switch (Op) {
  case BinaryInst::Op::Add:
    return LB + RB;
  case BinaryInst::Op::Sub:
    return LB - RB;
  case BinaryInst::Op::Mul:
    return LB * RB;
  case BinaryInst::Op::SDiv:
    return static_cast<uint64_t>(sdivW(L, R));
  case BinaryInst::Op::SRem:
    return static_cast<uint64_t>(sremW(L, R));
  case BinaryInst::Op::And:
    return LB & RB;
  case BinaryInst::Op::Or:
    return LB | RB;
  case BinaryInst::Op::Xor:
    return LB ^ RB;
  case BinaryInst::Op::Shl:
    return LB << (R & 63);
  case BinaryInst::Op::AShr:
    return static_cast<uint64_t>(L >> (R & 63));
  case BinaryInst::Op::FAdd:
    return bitsOfF(immF(L) + immF(R));
  case BinaryInst::Op::FSub:
    return bitsOfF(immF(L) - immF(R));
  case BinaryInst::Op::FMul:
    return bitsOfF(immF(L) * immF(R));
  case BinaryInst::Op::FDiv:
    return bitsOfF(immF(L) / immF(R));
  }
  return 0;
}

uint64_t foldCmp(CmpInst::Pred P, uint64_t LB, uint64_t RB) {
  const int64_t L = static_cast<int64_t>(LB), R = static_cast<int64_t>(RB);
  const double LF = immF(L), RF = immF(R);
  bool B = false;
  switch (P) {
  case CmpInst::Pred::EQ:
    B = L == R;
    break;
  case CmpInst::Pred::NE:
    B = L != R;
    break;
  case CmpInst::Pred::SLT:
    B = L < R;
    break;
  case CmpInst::Pred::SLE:
    B = L <= R;
    break;
  case CmpInst::Pred::SGT:
    B = L > R;
    break;
  case CmpInst::Pred::SGE:
    B = L >= R;
    break;
  case CmpInst::Pred::FEQ:
    B = LF == RF;
    break;
  case CmpInst::Pred::FNE:
    B = LF != RF;
    break;
  case CmpInst::Pred::FLT:
    B = LF < RF;
    break;
  case CmpInst::Pred::FLE:
    B = LF <= RF;
    break;
  case CmpInst::Pred::FGT:
    B = LF > RF;
    break;
  case CmpInst::Pred::FGE:
    B = LF >= RF;
    break;
  }
  return B ? 1 : 0;
}

uint64_t foldCast(CastInst::Op Op, Type::Kind SrcK, uint8_t DstSize,
                  uint64_t VB) {
  const int64_t V = static_cast<int64_t>(VB);
  switch (Op) {
  case CastInst::Op::SExt:
    // Canonical i8/i1 are zero-extended; re-sign-extend from width.
    if (SrcK == Type::Kind::Int8)
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int8_t>(V)));
    if (SrcK == Type::Kind::Int1)
      return (V & 1) ? ~uint64_t(0) : 0;
    return VB; // i32 held sign-extended already
  case CastInst::Op::ZExt:
    if (SrcK == Type::Kind::Int32)
      return static_cast<uint32_t>(V);
    return VB; // i8/i1 canonical form is zero-extended
  case CastInst::Op::Trunc:
    if (DstSize == 4)
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(V)));
    if (DstSize == 1)
      return VB & 0xFF;
    return VB;
  case CastInst::Op::SIToFP:
    return bitsOfF(static_cast<double>(V));
  case CastInst::Op::FPToSI:
    return static_cast<uint64_t>(static_cast<int64_t>(immF(V)));
  case CastInst::Op::PtrToInt:
  case CastInst::Op::IntToPtr:
  case CastInst::Op::Bitcast:
    return VB;
  }
  return VB;
}

/// Orders a parallel copy (unique destinations) into a sequential move
/// list, routing cycles through the scratch register.
void sequentializeMoves(std::vector<Move> &Mv, uint32_t Scratch) {
  if (Mv.size() < 2)
    return;
  std::vector<Move> Out;
  Out.reserve(Mv.size() + 2);
  std::vector<Move> Pend = std::move(Mv);
  while (!Pend.empty()) {
    bool Progress = false;
    for (size_t I = 0; I < Pend.size();) {
      bool DstIsPendingSrc = false;
      for (size_t J = 0; J < Pend.size(); ++J)
        if (J != I && Pend[J].Src == Pend[I].Dst) {
          DstIsPendingSrc = true;
          break;
        }
      if (!DstIsPendingSrc) {
        Out.push_back(Pend[I]);
        Pend.erase(Pend.begin() + I);
        Progress = true;
      } else {
        ++I;
      }
    }
    if (!Progress && !Pend.empty()) {
      // Every pending destination is still a pending source: a cycle.
      // Save the first move's about-to-be-clobbered destination and
      // redirect its readers to the scratch slot.
      const uint32_t Clobbered = Pend.front().Dst;
      Out.push_back({Scratch, Clobbered});
      for (auto &P : Pend)
        if (P.Src == Clobbered)
          P.Src = Scratch;
    }
  }
  Mv = std::move(Out);
}

/// Applies one edge's move range. Sequentialized lists run in order;
/// reference lists use read-all-then-write simultaneous semantics.
inline void applyEdgeMoves(RuntimeValue *R, const Move *Mv, uint32_t B,
                           uint32_t E, bool Seq) {
  if (Seq) {
    for (uint32_t I = B; I != E; ++I)
      R[Mv[I].Dst] = R[Mv[I].Src];
    return;
  }
  RuntimeValue Tmp[64];
  std::vector<RuntimeValue> Ov;
  RuntimeValue *T = Tmp;
  const uint32_t N = E - B;
  if (N > 64) {
    Ov.resize(N);
    T = Ov.data();
  }
  for (uint32_t I = 0; I != N; ++I)
    T[I] = R[Mv[B + I].Src];
  for (uint32_t I = 0; I != N; ++I)
    R[Mv[B + I].Dst] = T[I];
}

} // namespace

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

ExecutionEngine::DecodedFunction &ExecutionEngine::getDecoded(Function *F) {
  // Lock-free fast path: functions registered at construction have a
  // dense id whose cache slot is published (release) once decoding
  // finishes, so concurrent tasks re-entering a hot function never touch
  // the decode mutex.
  std::atomic<DecodedFunction *> *Slot = nullptr;
  {
    auto IdIt = FunctionIds.find(F); // map is immutable after construction
    if (IdIt != FunctionIds.end()) {
      Slot = &DecodedById[IdIt->second];
      if (DecodedFunction *Hit = Slot->load(std::memory_order_acquire)) {
        telemetry::count(telemetry::Counter::DecodeHit);
        return *Hit;
      }
    }
  }

  std::lock_guard<std::mutex> Lock(DecodeMutex);
  if (Slot) {
    if (DecodedFunction *Hit = Slot->load(std::memory_order_relaxed)) {
      telemetry::count(telemetry::Counter::DecodeHit);
      return *Hit;
    }
  } else {
    // Function created after engine construction: fall back to a map.
    auto It = DecodedOverflow.find(F);
    if (It != DecodedOverflow.end()) {
      telemetry::count(telemetry::Counter::DecodeHit);
      return *It->second;
    }
  }

  const uint64_t DecodeT0 =
      telemetry::metricsEnabled() ? telemetry::nowNs() : 0;
  auto DF = std::make_unique<DecodedFunction>();
  DF->F = F;
  const bool Opt = Opts.DecodeOpt;
  DF->SeqMoves = Opt;

  // Register numbering: arguments first, then value-producing
  // instructions. Every SSA value keeps a slot even when folding or
  // fusion ends up never writing it; numbering stays independent of the
  // optimization decisions.
  std::map<const Value *, uint32_t> RegOf;
  uint32_t NextReg = 0;
  for (unsigned I = 0; I < F->getNumArgs(); ++I)
    RegOf[F->getArg(I)] = NextReg++;
  for (const auto &BB : F->getBlocks())
    for (const auto &Inst : BB->getInstList())
      if (!Inst->getType()->isVoid()) {
        RegOf[Inst.get()] = NextReg;
        // A vector value owns one slot per lane; its base register is
        // the SSA slot and lanes live at base .. base+lanes.
        NextReg += Inst->getType()->isVector()
                       ? static_cast<uint32_t>(
                             Inst->getType()->getVectorNumLanes())
                       : 1;
      }
  DF->NumRegs = NextReg;
  const uint32_t ScratchReg = NextReg; // constant pool starts after it

  // Phi result registers are rewritten on every edge; they are the one
  // class of register that is not single-assignment, so copy propagation
  // and cross-block flattening must never read through them.
  std::set<uint32_t> PhiRegs;
  for (const auto &BB : F->getBlocks())
    for (const auto &Inst : BB->getInstList())
      if (isa<PhiInst>(Inst.get()))
        PhiRegs.insert(RegOf.at(Inst.get()));

  // Block numbering, in layout order (entry first).
  std::map<const BasicBlock *, uint32_t> BlockIdx;
  for (const auto &BB : F->getBlocks()) {
    BlockIdx[BB.get()] = static_cast<uint32_t>(DF->BlockBB.size());
    DF->BlockBB.push_back(BB.get());
  }

  // Constant pool, deduplicated by bit pattern. Slots live after the
  // scratch register in the frame's register file.
  std::map<uint64_t, uint32_t> ConstSlot;
  auto InternBits = [&](uint64_t Bits) -> uint32_t {
    auto It = ConstSlot.find(Bits);
    if (It != ConstSlot.end())
      return ScratchReg + 1 + It->second;
    uint32_t SlotIdx = static_cast<uint32_t>(DF->Consts.size());
    ConstSlot.emplace(Bits, SlotIdx);
    DF->Consts.push_back(RuntimeValue::ofPtr(Bits));
    return ScratchReg + 1 + SlotIdx;
  };

  // Decode-time value facts, filled by the optimization pre-pass.
  std::map<const Value *, uint64_t> KnownBits; // results folded to consts
  std::map<const Value *, uint32_t> AliasReg;  // copy-propagated results
  std::set<const Instruction *> Elided;        // fused producers: no code
  std::map<const Instruction *, const GEPInst *> FusedAddr; // ld/st -> gep
  std::map<const BranchInst *, const CmpInst *> FusedCmp;
  std::map<const BinaryInst *, const BinaryInst *> FusedMul; // add -> mul

  auto ConstBits = [&](const Value *V, uint64_t &Bits) -> bool {
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      Bits = static_cast<uint64_t>(CI->getValue());
      return true;
    }
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      Bits = bitsOfF(CF->getValue());
      return true;
    }
    if (isa<UndefValue>(V)) {
      Bits = 0;
      return true;
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      Bits = getGlobalAddress(G);
      return true;
    }
    if (const auto *Fn = dyn_cast<Function>(V)) {
      Bits = encodeFunction(Fn);
      return true;
    }
    auto It = KnownBits.find(V);
    if (It != KnownBits.end()) {
      Bits = It->second;
      return true;
    }
    return false;
  };

  auto ResolveReg = [&](const Value *V) -> uint32_t {
    auto It = AliasReg.find(V);
    if (It != AliasReg.end())
      return It->second;
    return RegOf.at(V);
  };

  auto OperandReg = [&](const Value *V) -> uint32_t {
    uint64_t Bits;
    if (ConstBits(V, Bits))
      return InternBits(Bits);
    return ResolveReg(V);
  };

  // Walks constant-index gep chains upward, accumulating the byte
  // displacement, so nested indexing collapses into one address op.
  // Reading the inner base at the consumer is safe only when it is a
  // constant or a single-assignment (non-phi) register.
  auto FlattenBase = [&](const Value *Base, uint64_t &Disp) -> const Value * {
    if (!Opt)
      return Base;
    while (const auto *G = dyn_cast<GEPInst>(Base)) {
      uint64_t Whole, IdxB;
      if (ConstBits(G, Whole)) // whole gep folded: caller interns it
        break;
      if (!ConstBits(G->getIndex(), IdxB))
        break;
      uint64_t BaseB;
      if (!ConstBits(G->getBase(), BaseB) &&
          PhiRegs.count(ResolveReg(G->getBase())))
        break;
      Disp += IdxB * G->getScale();
      Base = G->getBase();
    }
    return Base;
  };

  //=== Optimization pre-pass ===============================================
  // Runs over reachable blocks in reverse post-order, so every operand's
  // fold/alias fact is final before any use is examined (RPO places
  // dominators first, and SSA defs dominate their uses). Unreachable
  // blocks are skipped: their instructions decode unoptimized, and the
  // same-block requirement on fusion keeps the maps consistent.
  if (Opt && !F->getBlocks().empty()) {
    std::vector<const BasicBlock *> Post;
    std::set<const BasicBlock *> Visited;
    std::vector<std::pair<const BasicBlock *, unsigned>> Stack;
    const BasicBlock *Entry = F->getBlocks().front().get();
    Visited.insert(Entry);
    Stack.push_back({Entry, 0});
    auto SuccOf = [](const BasicBlock *BB, unsigned I) -> const BasicBlock * {
      const auto *Term =
          dyn_cast<BranchInst>(BB->getInstList().back().get());
      if (!Term)
        return nullptr;
      unsigned N = Term->isConditional() ? 2 : 1;
      return I < N ? Term->getSuccessor(I) : nullptr;
    };
    while (!Stack.empty()) {
      auto &[BB, NextSucc] = Stack.back();
      if (const BasicBlock *S = SuccOf(BB, NextSucc)) {
        ++NextSucc;
        if (Visited.insert(S).second)
          Stack.push_back({S, 0});
        continue;
      }
      Post.push_back(BB);
      Stack.pop_back();
    }

    for (auto It = Post.rbegin(); It != Post.rend(); ++It) {
      const BasicBlock *BB = *It;
      for (const auto &InstPtr : BB->getInstList()) {
        const Instruction *I = InstPtr.get();
        if (isa<PhiInst>(I))
          continue;
        switch (I->getKind()) {
        case Value::Kind::Binary: {
          const auto *B = cast<BinaryInst>(I);
          uint64_t LB, RB;
          if (ConstBits(B->getLHS(), LB) && ConstBits(B->getRHS(), RB)) {
            KnownBits[I] = foldBinary(B->getOp(), LB, RB);
            break;
          }
          // Induction-update fusion: an integer add consuming a
          // single-use mul from the same block becomes one MulAdd.
          if (B->getOp() == BinaryInst::Op::Add) {
            for (const Value *OpV : {B->getLHS(), B->getRHS()}) {
              const auto *Mul = dyn_cast<BinaryInst>(OpV);
              if (Mul && Mul->getOp() == BinaryInst::Op::Mul &&
                  Mul->getParent() == BB && Mul->getNumUses() == 1 &&
                  !KnownBits.count(Mul) && !Elided.count(Mul)) {
                FusedMul[B] = Mul;
                Elided.insert(Mul);
                break;
              }
            }
          }
          break;
        }
        case Value::Kind::Cmp: {
          const auto *C = cast<CmpInst>(I);
          uint64_t LB, RB;
          if (ConstBits(C->getLHS(), LB) && ConstBits(C->getRHS(), RB)) {
            KnownBits[I] = foldCmp(C->getPred(), LB, RB);
            break;
          }
          // cmp+br fusion: the compare's only use is the same block's
          // conditional branch.
          if (C->getNumUses() == 1) {
            const auto *Br = dyn_cast<BranchInst>(C->uses()[0].TheUser);
            if (Br && Br->isConditional() && Br->getCondition() == C &&
                Br->getParent() == BB) {
              FusedCmp[Br] = C;
              Elided.insert(C);
            }
          }
          break;
        }
        case Value::Kind::Cast: {
          const auto *C = cast<CastInst>(I);
          const Value *V = C->getValueOperand();
          const Type::Kind SrcK = V->getType()->getKind();
          uint64_t VB;
          if (ConstBits(V, VB)) {
            KnownBits[I] =
                foldCast(C->getOp(), SrcK, memSizeOf(C->getType()), VB);
            break;
          }
          bool NoOp = false;
          switch (C->getOp()) {
          case CastInst::Op::SExt:
            NoOp = SrcK != Type::Kind::Int8 && SrcK != Type::Kind::Int1;
            break;
          case CastInst::Op::ZExt:
            NoOp = SrcK != Type::Kind::Int32;
            break;
          case CastInst::Op::Trunc:
            NoOp = memSizeOf(C->getType()) == 8;
            break;
          case CastInst::Op::PtrToInt:
          case CastInst::Op::IntToPtr:
          case CastInst::Op::Bitcast:
            NoOp = true;
            break;
          default:
            break;
          }
          if (NoOp) {
            uint32_t SrcReg = ResolveReg(V);
            if (!PhiRegs.count(SrcReg))
              AliasReg[I] = SrcReg;
          }
          break;
        }
        case Value::Kind::Select: {
          const auto *S = cast<SelectInst>(I);
          uint64_t CB;
          if (ConstBits(S->getCondition(), CB)) {
            const Value *Chosen =
                (CB & 1) ? S->getTrueValue() : S->getFalseValue();
            uint64_t VB;
            if (ConstBits(Chosen, VB)) {
              KnownBits[I] = VB;
              break;
            }
            uint32_t SrcReg = ResolveReg(Chosen);
            if (!PhiRegs.count(SrcReg))
              AliasReg[I] = SrcReg;
            // else: emitted as a Mov from the phi register
          }
          break;
        }
        case Value::Kind::GEP: {
          const auto *G = cast<GEPInst>(I);
          uint64_t BaseB, IdxB;
          if (ConstBits(G->getBase(), BaseB) &&
              ConstBits(G->getIndex(), IdxB)) {
            KnownBits[I] = BaseB + IdxB * G->getScale();
            break;
          }
          // gep+load / gep+store fusion: the address computation's only
          // use is a same-block memory access through it.
          if (G->getNumUses() == 1) {
            const User *U = G->uses()[0].TheUser;
            if (const auto *L = dyn_cast<LoadInst>(U)) {
              if (L->getParent() == BB && L->getPointerOperand() == G) {
                FusedAddr[L] = G;
                Elided.insert(G);
              }
            } else if (const auto *St = dyn_cast<StoreInst>(U)) {
              if (St->getParent() == BB && St->getPointerOperand() == G &&
                  St->getValueOperand() != G) {
                FusedAddr[St] = G;
                Elided.insert(G);
              }
            }
          }
          break;
        }
        default:
          break;
        }
      }
    }
  }

  //=== Emission ===========================================================

  // Shared by standalone compares and fused compare-branches.
  auto FillCmp = [&](DInst &D, const CmpInst *C, Opc RRBase, Opc RIBase) {
    uint64_t LB, RB;
    const Value *L = C->getLHS(), *R = C->getRHS();
    const bool LC = ConstBits(L, LB), RC = ConstBits(R, RB);
    CmpInst::Pred P = C->getPred();
    if (RC) {
      D.Op = opcAdd(RIBase, static_cast<unsigned>(P));
      D.A = OperandReg(L);
      D.Imm = static_cast<int64_t>(RB);
    } else if (LC) {
      P = CmpInst::getSwappedPred(P);
      D.Op = opcAdd(RIBase, static_cast<unsigned>(P));
      D.A = OperandReg(R);
      D.Imm = static_cast<int64_t>(LB);
    } else {
      D.Op = opcAdd(RRBase, static_cast<unsigned>(P));
      D.A = OperandReg(L);
      D.B = OperandReg(R);
    }
  };

  // Collects the phi moves for one CFG edge and returns the pooled range.
  auto EdgeMoves = [&](const BasicBlock *Pred,
                       const BasicBlock *Succ) -> std::pair<uint32_t, uint32_t> {
    std::vector<Move> Mv;
    for (const auto &PI : Succ->getInstList()) {
      const auto *Phi = dyn_cast<PhiInst>(PI.get());
      if (!Phi)
        continue;
      const Value *In = nullptr;
      for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K)
        if (Phi->getIncomingBlock(K) == Pred) {
          In = Phi->getIncomingValue(K);
          break;
        }
      assert(In && "phi has no incoming value for the executed edge");
      const uint32_t DstR = RegOf.at(Phi);
      const uint32_t SrcR = OperandReg(In);
      if (DstR != SrcR)
        Mv.push_back({DstR, SrcR});
    }
    if (Opt)
      sequentializeMoves(Mv, ScratchReg);
    const uint32_t Begin = static_cast<uint32_t>(DF->Moves.size());
    DF->Moves.insert(DF->Moves.end(), Mv.begin(), Mv.end());
    return {Begin, static_cast<uint32_t>(DF->Moves.size())};
  };

  for (const auto &BBPtr : F->getBlocks()) {
    const BasicBlock *BB = BBPtr.get();
    DF->BlockPc.push_back(static_cast<uint32_t>(DF->Code.size()));
    uint64_t NumPhis = 0;
    for (const auto &InstPtr : BB->getInstList())
      if (isa<PhiInst>(InstPtr.get()))
        ++NumPhis;

    uint32_t OrigIdx = 0; // non-phi position in the original block
    for (const auto &InstPtr : BB->getInstList()) {
      const Instruction *I = InstPtr.get();
      if (isa<PhiInst>(I))
        continue;
      const uint32_t MyIdx = OrigIdx++;
      if (Elided.count(I) || KnownBits.count(I) || AliasReg.count(I))
        continue;

      DInst D{};
      D.Op = Opc::Unreachable;
      D.Orig = I;
      if (!I->getType()->isVoid())
        D.Dst = static_cast<int32_t>(RegOf.at(I));

      switch (I->getKind()) {
      case Value::Kind::Alloca: {
        const auto *A = cast<AllocaInst>(I);
        // 8-byte align each allocation within the frame.
        DF->FrameBytes = (DF->FrameBytes + 7) & ~uint64_t(7);
        D.Op = Opc::Alloca;
        D.Imm = static_cast<int64_t>(DF->FrameBytes);
        DF->FrameBytes += A->getAllocationSize();
        break;
      }
      case Value::Kind::Load: {
        const auto *L = cast<LoadInst>(I);
        const uint8_t Sz = memSizeOf(L->getType());
        const unsigned SzOff = Sz == 8 ? 0 : Sz == 4 ? 1 : 2;
        auto FIt = FusedAddr.find(I);
        if (FIt != FusedAddr.end()) {
          const GEPInst *G = FIt->second;
          uint64_t Disp = 0;
          const Value *Base = FlattenBase(G->getBase(), Disp);
          uint64_t IdxB;
          if (ConstBits(G->getIndex(), IdxB)) {
            Disp += IdxB * G->getScale();
            D.A = OperandReg(Base);
            D.Imm = static_cast<int64_t>(Disp);
            D.Op = opcAdd(Disp ? Opc::LdOff8 : Opc::Ld8, SzOff);
          } else {
            D.Op = opcAdd(Opc::LdIdx8, SzOff);
            D.A = OperandReg(Base);
            D.B = OperandReg(G->getIndex());
            D.Scl = static_cast<uint32_t>(G->getScale());
            D.Imm = static_cast<int64_t>(Disp);
          }
        } else {
          D.Op = opcAdd(Opc::Ld8, SzOff);
          D.A = OperandReg(L->getPointerOperand());
        }
        break;
      }
      case Value::Kind::Store: {
        const auto *S = cast<StoreInst>(I);
        const uint8_t Sz = memSizeOf(S->getValueOperand()->getType());
        const unsigned SzOff = Sz == 8 ? 0 : Sz == 4 ? 1 : 2;
        D.A = OperandReg(S->getValueOperand());
        auto FIt = FusedAddr.find(I);
        if (FIt != FusedAddr.end()) {
          const GEPInst *G = FIt->second;
          uint64_t Disp = 0;
          const Value *Base = FlattenBase(G->getBase(), Disp);
          uint64_t IdxB;
          if (ConstBits(G->getIndex(), IdxB)) {
            Disp += IdxB * G->getScale();
            D.B = OperandReg(Base);
            D.Imm = static_cast<int64_t>(Disp);
            D.Op = opcAdd(Disp ? Opc::StOff8 : Opc::St8, SzOff);
          } else {
            D.Op = opcAdd(Opc::StIdx8, SzOff);
            D.B = OperandReg(Base);
            D.C = OperandReg(G->getIndex());
            D.Scl = static_cast<uint32_t>(G->getScale());
            D.Imm = static_cast<int64_t>(Disp);
          }
        } else {
          D.Op = opcAdd(Opc::St8, SzOff);
          D.B = OperandReg(S->getPointerOperand());
        }
        break;
      }
      case Value::Kind::GEP: {
        const auto *G = cast<GEPInst>(I);
        uint64_t Disp = 0;
        const Value *Base = FlattenBase(G->getBase(), Disp);
        uint64_t IdxB;
        if (Opt && ConstBits(G->getIndex(), IdxB)) {
          Disp += IdxB * G->getScale();
          D.Op = Opc::GepOff;
          D.A = OperandReg(Base);
          D.Imm = static_cast<int64_t>(Disp);
        } else {
          D.Op = Opc::GepRR;
          D.A = OperandReg(Base);
          D.B = OperandReg(G->getIndex());
          D.Scl = static_cast<uint32_t>(G->getScale());
          D.Imm = static_cast<int64_t>(Disp);
        }
        break;
      }
      case Value::Kind::Binary: {
        const auto *B = cast<BinaryInst>(I);
        auto MIt = FusedMul.find(B);
        if (MIt != FusedMul.end()) {
          const BinaryInst *Mul = MIt->second;
          const Value *Other =
              (B->getLHS() == Mul) ? B->getRHS() : B->getLHS();
          const Value *ML = Mul->getLHS(), *MR = Mul->getRHS();
          uint64_t MLB, MRB;
          const bool MLC = ConstBits(ML, MLB), MRC = ConstBits(MR, MRB);
          if (MRC) {
            D.Op = Opc::MulAddRI;
            D.A = OperandReg(ML);
            D.Imm = static_cast<int64_t>(MRB);
            D.B = OperandReg(Other);
          } else if (MLC) {
            D.Op = Opc::MulAddRI;
            D.A = OperandReg(MR);
            D.Imm = static_cast<int64_t>(MLB);
            D.B = OperandReg(Other);
          } else {
            D.Op = Opc::MulAddRR;
            D.A = OperandReg(ML);
            D.B = OperandReg(MR);
            D.C = OperandReg(Other);
          }
          break;
        }
        const Value *L = B->getLHS(), *R = B->getRHS();
        uint64_t LB, RB;
        const bool LC = ConstBits(L, LB), RC = ConstBits(R, RB);
        const auto Op = B->getOp();
        const unsigned OpIdx = static_cast<unsigned>(Op);
        const bool FP = B->isFloatingPoint();
        const Opc RRBase = FP ? opcAdd(Opc::FAddRR, OpIdx - 10)
                              : opcAdd(Opc::AddRR, OpIdx);
        const Opc RIBase = FP ? opcAdd(Opc::FAddRI, OpIdx - 10)
                              : opcAdd(Opc::AddRI, OpIdx);
        if (RC) {
          D.Op = RIBase;
          D.A = OperandReg(L);
          D.Imm = static_cast<int64_t>(RB);
        } else if (LC) {
          if (B->isCommutative()) {
            D.Op = RIBase;
          } else {
            switch (Op) {
            case BinaryInst::Op::Sub:
              D.Op = Opc::SubIR;
              break;
            case BinaryInst::Op::SDiv:
              D.Op = Opc::SDivIR;
              break;
            case BinaryInst::Op::SRem:
              D.Op = Opc::SRemIR;
              break;
            case BinaryInst::Op::Shl:
              D.Op = Opc::ShlIR;
              break;
            case BinaryInst::Op::AShr:
              D.Op = Opc::AShrIR;
              break;
            case BinaryInst::Op::FSub:
              D.Op = Opc::FSubIR;
              break;
            case BinaryInst::Op::FDiv:
              D.Op = Opc::FDivIR;
              break;
            default:
              assert(false && "non-commutative op expected");
            }
          }
          D.A = OperandReg(R);
          D.Imm = static_cast<int64_t>(LB);
        } else {
          D.Op = RRBase;
          D.A = OperandReg(L);
          D.B = OperandReg(R);
        }
        break;
      }
      case Value::Kind::Cmp:
        FillCmp(D, cast<CmpInst>(I), Opc::CmpEQRR, Opc::CmpEQRI);
        break;
      case Value::Kind::Cast: {
        const auto *C = cast<CastInst>(I);
        const Type::Kind SrcK = C->getValueOperand()->getType()->getKind();
        D.A = OperandReg(C->getValueOperand());
        switch (C->getOp()) {
        case CastInst::Op::SExt:
          D.Op = SrcK == Type::Kind::Int8   ? Opc::SExt8
                 : SrcK == Type::Kind::Int1 ? Opc::SExt1
                                            : Opc::Mov;
          break;
        case CastInst::Op::ZExt:
          D.Op = SrcK == Type::Kind::Int32 ? Opc::ZExt32 : Opc::Mov;
          break;
        case CastInst::Op::Trunc: {
          const uint8_t DS = memSizeOf(C->getType());
          D.Op = DS == 4 ? Opc::Trunc32 : DS == 1 ? Opc::Trunc8 : Opc::Mov;
          break;
        }
        case CastInst::Op::SIToFP:
          D.Op = Opc::SIToFP;
          break;
        case CastInst::Op::FPToSI:
          D.Op = Opc::FPToSI;
          break;
        case CastInst::Op::PtrToInt:
        case CastInst::Op::IntToPtr:
        case CastInst::Op::Bitcast:
          D.Op = Opc::Mov;
          break;
        }
        break;
      }
      case Value::Kind::Select: {
        const auto *S = cast<SelectInst>(I);
        uint64_t CB;
        if (Opt && ConstBits(S->getCondition(), CB)) {
          // The chosen value resolved to a phi register (anything else
          // was folded or aliased in the pre-pass): emit a copy.
          const Value *Chosen =
              (CB & 1) ? S->getTrueValue() : S->getFalseValue();
          D.Op = Opc::Mov;
          D.A = OperandReg(Chosen);
        } else {
          D.Op = Opc::Sel;
          D.A = OperandReg(S->getCondition());
          D.B = OperandReg(S->getTrueValue());
          D.C = OperandReg(S->getFalseValue());
        }
        break;
      }
      case Value::Kind::Branch: {
        const auto *Br = cast<BranchInst>(I);
        D.BlockRetire = BB->size();
        if (Br->isConditional()) {
          const BasicBlock *SB0 = Br->getSuccessor(0);
          const BasicBlock *SB1 = Br->getSuccessor(1);
          auto [M0B, M0E] = EdgeMoves(BB, SB0);
          auto [M1B, M1E] = EdgeMoves(BB, SB1);
          D.M0B = M0B;
          D.M0E = M0E;
          D.M1B = M1B;
          D.M1E = M1E;
          D.T0 = BlockIdx.at(SB0);
          D.T1 = BlockIdx.at(SB1);
          auto CIt = FusedCmp.find(Br);
          if (CIt != FusedCmp.end()) {
            FillCmp(D, CIt->second, Opc::BrEQRR, Opc::BrEQRI);
          } else {
            D.Op = Opc::Br;
            D.A = OperandReg(Br->getCondition());
          }
          D.Orig = Br; // observers see the branch, not the fused compare
        } else {
          D.Op = Opc::Jmp;
          const BasicBlock *SB0 = Br->getSuccessor(0);
          auto [M0B, M0E] = EdgeMoves(BB, SB0);
          D.M0B = M0B;
          D.M0E = M0E;
          D.T0 = BlockIdx.at(SB0);
        }
        break;
      }
      case Value::Kind::Call: {
        const auto *CI = cast<CallInst>(I);
        D.OrigSoFar = NumPhis + MyIdx + 1;
        D.ArgsB = static_cast<uint32_t>(DF->ArgPool.size());
        for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
          DF->ArgPool.push_back(OperandReg(CI->getArg(A)));
        D.ArgsE = static_cast<uint32_t>(DF->ArgPool.size());
        Function *Callee = CI->getCalledFunction();
        if (!Callee) {
          D.Op = Opc::CallIndirect;
          D.A = OperandReg(CI->getCalleeOperand());
        } else if (Callee->isDeclaration()) {
          // Pre-resolve the external to its dense slot (assigned now if
          // the implementation registers later).
          D.Op = Opc::CallExternal;
          D.DirectCallee = Callee;
          D.ExternalId =
              static_cast<int32_t>(externalIdFor(Callee->getName()));
        } else {
          D.Op = Opc::CallDirect;
          D.DirectCallee = Callee;
          auto IdIt = FunctionIds.find(Callee);
          if (IdIt != FunctionIds.end())
            D.CalleeSlot = &DecodedById[IdIt->second];
        }
        break;
      }
      case Value::Kind::Ret: {
        const auto *Rt = cast<RetInst>(I);
        D.BlockRetire = BB->size();
        if (Rt->hasReturnValue()) {
          D.Op = Opc::Ret;
          D.A = OperandReg(Rt->getReturnValue());
        } else {
          D.Op = Opc::RetVoid;
        }
        break;
      }
      case Value::Kind::Unreachable:
        D.Op = Opc::Unreachable;
        break;
      case Value::Kind::VLoad: {
        const auto *VL = cast<VLoadInst>(I);
        Type *VecTy = VL->getType();
        D.Op = memSizeOf(VecTy->getVectorElementType()) == 8 ? Opc::VLd8
                                                             : Opc::VLd4;
        D.A = OperandReg(VL->getPointerOperand());
        D.Scl = static_cast<uint32_t>(VecTy->getVectorNumLanes());
        break;
      }
      case Value::Kind::VStore: {
        const auto *VS = cast<VStoreInst>(I);
        Type *VecTy = VS->getValueOperand()->getType();
        D.Op = memSizeOf(VecTy->getVectorElementType()) == 8 ? Opc::VSt8
                                                             : Opc::VSt4;
        D.A = static_cast<int32_t>(RegOf.at(VS->getValueOperand()));
        D.B = OperandReg(VS->getPointerOperand());
        D.Scl = static_cast<uint32_t>(VecTy->getVectorNumLanes());
        break;
      }
      case Value::Kind::VBinary: {
        // VAdd..VFDiv mirror BinaryInst::Op order, including the FP tail.
        const auto *VB = cast<VBinaryInst>(I);
        D.Op = opcAdd(Opc::VAdd, static_cast<unsigned>(VB->getOp()));
        D.A = static_cast<int32_t>(RegOf.at(VB->getLHS()));
        D.B = static_cast<int32_t>(RegOf.at(VB->getRHS()));
        D.Scl = static_cast<uint32_t>(I->getType()->getVectorNumLanes());
        break;
      }
      case Value::Kind::VExtract: {
        // A lane is just a register: extract decodes to a plain copy.
        const auto *VE = cast<VExtractInst>(I);
        D.Op = Opc::Mov;
        D.A = static_cast<int32_t>(RegOf.at(VE->getVectorOperand()) +
                                   VE->getLane());
        break;
      }
      case Value::Kind::VPack: {
        const auto *VP = cast<VPackInst>(I);
        D.Op = Opc::VPackOp;
        D.ArgsB = static_cast<uint32_t>(DF->ArgPool.size());
        for (uint64_t L = 0, E = VP->getNumLanes(); L != E; ++L)
          DF->ArgPool.push_back(OperandReg(VP->getLaneOperand(L)));
        D.ArgsE = static_cast<uint32_t>(DF->ArgPool.size());
        D.Scl = static_cast<uint32_t>(VP->getNumLanes());
        break;
      }
      default:
        assert(false && "unhandled instruction kind while decoding");
      }
      DF->Code.push_back(D);
    }
  }

  // Resolve branch targets from block indices to pcs.
  for (DInst &D : DF->Code) {
    if (D.Op == Opc::Jmp) {
      D.S0 = static_cast<int32_t>(DF->BlockPc[D.T0]);
    } else if (D.Op == Opc::Br ||
               (D.Op >= Opc::BrEQRR && D.Op <= Opc::BrFGERI)) {
      D.S0 = static_cast<int32_t>(DF->BlockPc[D.T0]);
      D.S1 = static_cast<int32_t>(DF->BlockPc[D.T1]);
    }
  }

  DF->FileSize = ScratchReg + 1 + static_cast<uint32_t>(DF->Consts.size());

  // Per-block fused-superinstruction counts for the observed tier's fire
  // accounting (each fused consumer executes once per block entry).
  DF->BlockFused.assign(DF->BlockBB.size(), 0);
  auto ChargeFused = [&](const Instruction *Consumer) {
    auto BIt = BlockIdx.find(Consumer->getParent());
    if (BIt != BlockIdx.end())
      ++DF->BlockFused[BIt->second];
  };
  for (const auto &[Consumer, Gep] : FusedAddr)
    ChargeFused(Consumer);
  for (const auto &[Br, Cmp] : FusedCmp)
    ChargeFused(Br);
  for (const auto &[Add, Mul] : FusedMul)
    ChargeFused(Add);

  if (DecodeT0) {
    telemetry::count(telemetry::Counter::DecodeMiss);
    telemetry::record(telemetry::Hist::DecodeNs,
                      telemetry::nowNs() - DecodeT0);
    telemetry::count(telemetry::Counter::FuseSiteCmpBr, FusedCmp.size());
    telemetry::count(telemetry::Counter::FuseSiteGepMem, FusedAddr.size());
    telemetry::count(telemetry::Counter::FuseSiteMulAdd, FusedMul.size());
    telemetry::count(telemetry::Counter::FuseSiteElided, Elided.size());
  }

  auto &Ref = *DF;
  DecodedStore.push_back(std::move(DF));
  if (Slot)
    Slot->store(&Ref, std::memory_order_release);
  else
    DecodedOverflow[F] = &Ref;
  return Ref;
}

//===----------------------------------------------------------------------===//
// Engine lifecycle
//===----------------------------------------------------------------------===//

ExecutionEngine::ExecutionEngine(Module &M, Options Opts)
    : M(M), Opts(Opts) {
  // Lay out globals.
  uint64_t Total = 0;
  for (const auto &G : M.getGlobals()) {
    Total = (Total + 7) & ~uint64_t(7);
    Total += std::max<uint64_t>(G->getStoreSize(), 8);
  }
  GlobalStorage.resize(Total + 8, 0);
  uint64_t Offset = 0;
  for (const auto &G : M.getGlobals()) {
    Offset = (Offset + 7) & ~uint64_t(7);
    uint64_t Addr = reinterpret_cast<uint64_t>(GlobalStorage.data()) + Offset;
    GlobalAddr[G.get()] = Addr;
    const auto &Init = G->getInitWords();
    for (size_t W = 0; W < Init.size() && W * 8 < G->getStoreSize(); ++W)
      std::memcpy(GlobalStorage.data() + Offset + W * 8, &Init[W], 8);
    Offset += std::max<uint64_t>(G->getStoreSize(), 8);
  }

  Heap.resize(Opts.HeapBytes);

  // Function id table for function-pointer encoding and the dense
  // decoded-function cache.
  uint64_t Id = 0;
  for (const auto &F : M.getFunctions()) {
    FunctionIds[F.get()] = Id++;
    FunctionById.push_back(F.get());
  }
  DecodedById =
      std::make_unique<std::atomic<DecodedFunction *>[]>(FunctionById.size());
  for (size_t I = 0; I < FunctionById.size(); ++I)
    DecodedById[I].store(nullptr, std::memory_order_relaxed);

  installDefaultLibrary();
}

ExecutionEngine::~ExecutionEngine() = default;

bool ExecutionEngine::hasThreadedDispatch() {
#ifdef NOELLE_INTERP_HAVE_CGOTO
  return true;
#else
  return false;
#endif
}

uint64_t ExecutionEngine::heapAlloc(uint64_t Bytes) {
  uint64_t Aligned = (Bytes + 15) & ~uint64_t(15);
  // CAS loop: the bump must not be committed before the bounds check, or
  // a losing racer could hand out an overlapping region to a thread
  // whose own check passed against the already-bumped top.
  uint64_t Old = HeapTop.load(std::memory_order_relaxed);
  do {
    if (Aligned < Bytes || Aligned > Heap.size() ||
        Old > Heap.size() - Aligned) {
      std::fprintf(stderr, "interpreter heap exhausted\n");
      std::abort();
    }
  } while (!HeapTop.compare_exchange_weak(Old, Old + Aligned,
                                          std::memory_order_relaxed));
  return reinterpret_cast<uint64_t>(Heap.data()) + Old;
}

ThreadPool &ExecutionEngine::getThreadPool() {
  std::lock_guard<std::mutex> Lock(RuntimeStateMutex);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>();
  return *Pool;
}

QueueRegistry &ExecutionEngine::getQueueRegistry() {
  std::lock_guard<std::mutex> Lock(RuntimeStateMutex);
  if (!Queues)
    Queues = std::make_unique<QueueRegistry>();
  return *Queues;
}

uint64_t
ExecutionEngine::getGlobalAddress(const GlobalVariable *G) const {
  auto It = GlobalAddr.find(G);
  assert(It != GlobalAddr.end() && "global not laid out");
  return It->second;
}

bool ExecutionEngine::isValidAddress(uint64_t Addr, uint64_t Bytes) const {
  uint64_t GBase = reinterpret_cast<uint64_t>(GlobalStorage.data());
  if (Addr >= GBase && Addr + Bytes <= GBase + GlobalStorage.size())
    return true;
  uint64_t HBase = reinterpret_cast<uint64_t>(Heap.data());
  if (Addr >= HBase && Addr + Bytes <= HBase + HeapTop.load())
    return true;
  return frameRegistry().contains(Addr, Bytes);
}

uint64_t ExecutionEngine::encodeFunction(const Function *F) const {
  auto It = FunctionIds.find(F);
  assert(It != FunctionIds.end() && "function not registered");
  return FunctionTag | It->second;
}

Function *ExecutionEngine::decodeFunction(uint64_t Encoded) const {
  if ((Encoded & 0xFF00000000000000ull) != FunctionTag)
    return nullptr;
  uint64_t Id = Encoded & ~FunctionTag;
  return Id < FunctionById.size() ? FunctionById[Id] : nullptr;
}

uint32_t ExecutionEngine::externalIdFor(const std::string &Name) {
  auto It = ExternalIdByName.find(Name);
  if (It != ExternalIdByName.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(ExternalTable.size());
  ExternalIdByName.emplace(Name, Id);
  ExternalTable.emplace_back();
  return Id;
}

void ExecutionEngine::registerExternal(const std::string &Name,
                                       ExternalFn Fn) {
  std::lock_guard<std::mutex> Lock(DecodeMutex);
  ExternalTable[externalIdFor(Name)] = std::move(Fn);
}

void ExecutionEngine::appendOutput(const std::string &S) {
  std::lock_guard<std::mutex> Lock(OutputMutex);
  Output += S;
}

void ExecutionEngine::resetThreadRetired() { ThreadRetired = 0; }

uint64_t ExecutionEngine::readThreadRetired() { return ThreadRetired; }

void ExecutionEngine::recordDispatch(const DispatchRecord &R) {
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  Dispatches.push_back(R);
}

std::vector<DispatchRecord> ExecutionEngine::getDispatchRecords() const {
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  return Dispatches;
}

void ExecutionEngine::clearDispatchRecords() {
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  Dispatches.clear();
}

//===----------------------------------------------------------------------===//
// Execution tiers: one handler set (ExecuteLoop.inc), three loops.
//===----------------------------------------------------------------------===//

#ifdef NOELLE_INTERP_HAVE_CGOTO
#define NIR_EXEC_NAME execThreaded
#define NIR_EXEC_CGOTO 1
#define NIR_EXEC_OBSERVED 0
#include "interp/ExecuteLoop.inc"
#endif

#define NIR_EXEC_NAME execSwitch
#define NIR_EXEC_CGOTO 0
#define NIR_EXEC_OBSERVED 0
#include "interp/ExecuteLoop.inc"

#define NIR_EXEC_NAME execObserved
#define NIR_EXEC_CGOTO 0
#define NIR_EXEC_OBSERVED 1
#include "interp/ExecuteLoop.inc"

RuntimeValue
ExecutionEngine::execute(DecodedFunction &DF,
                         const std::vector<RuntimeValue> &Args,
                         unsigned Depth) {
  // An installed observer routes through the unbatched tier so
  // onBlockExecuted/onBranchExecuted fire in program order. Tier entries
  // are counted here (top-level entries only: recursion stays inside one
  // tier's loop), so transitions between tiers show up in the metrics.
  if (Observer) {
    telemetry::count(telemetry::Counter::TierObserved);
    return execObserved(DF, Args, Depth);
  }
#ifdef NOELLE_INTERP_HAVE_CGOTO
  if (Opts.Dispatch != DispatchMode::Switch) {
    telemetry::count(telemetry::Counter::TierThreaded);
    return execThreaded(DF, Args, Depth);
  }
#endif
  telemetry::count(telemetry::Counter::TierSwitch);
  return execSwitch(DF, Args, Depth);
}

RuntimeValue
ExecutionEngine::runFunction(Function *F,
                             const std::vector<RuntimeValue> &Args) {
  assert(!F->isDeclaration() && "cannot run a declaration directly");
  return execute(getDecoded(F), Args, 0);
}

ExecutionEngine::PreparedFunction ExecutionEngine::prepare(Function *F) {
  assert(!F->isDeclaration() && "cannot prepare a declaration");
  return &getDecoded(F);
}

RuntimeValue
ExecutionEngine::runPrepared(PreparedFunction P,
                             const std::vector<RuntimeValue> &Args) {
  return execute(*P, Args, 0);
}

int64_t ExecutionEngine::runMain() {
  Function *Main = M.getFunction("main");
  assert(Main && "module has no @main");
  return runFunction(Main, {}).I;
}

//===----------------------------------------------------------------------===//
// External library
//===----------------------------------------------------------------------===//

RuntimeValue
ExecutionEngine::callExternal(Function *F, const CallInst *Call,
                              const std::vector<RuntimeValue> &Args) {
  // Slow by-name path for indirect calls to externals; direct external
  // calls resolve a dense slot at decode time and never come here.
  const ExternalFn *Fn = nullptr;
  {
    std::lock_guard<std::mutex> Lock(DecodeMutex);
    auto It = ExternalIdByName.find(F->getName());
    if (It != ExternalIdByName.end())
      Fn = &ExternalTable[It->second];
  }
  if (!Fn || !*Fn) {
    std::fprintf(stderr, "interpreter: no implementation for external @%s\n",
                 F->getName().c_str());
    std::abort();
  }
  // Deque slots are stable; call without the lock so externals may
  // re-enter the engine (dispatch, decode, nested calls).
  return (*Fn)(*this, Call, Args);
}

void ExecutionEngine::installDefaultLibrary() {
  auto Simple = [this](const std::string &Name,
                       std::function<RuntimeValue(
                           ExecutionEngine &, const std::vector<RuntimeValue> &)>
                           Fn) {
    registerExternal(Name, [Fn](ExecutionEngine &E, const CallInst *,
                                const std::vector<RuntimeValue> &A) {
      return Fn(E, A);
    });
  };

  Simple("print_i64",
         [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
           E.appendOutput(std::to_string(A[0].I) + "\n");
           return RuntimeValue();
         });
  Simple("print_f64",
         [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
           char Buf[64];
           std::snprintf(Buf, sizeof(Buf), "%.6f\n", A[0].F);
           E.appendOutput(Buf);
           return RuntimeValue();
         });
  Simple("print_char",
         [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
           E.appendOutput(std::string(1, static_cast<char>(A[0].I)));
           return RuntimeValue();
         });
  Simple("malloc", [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofPtr(E.heapAlloc(static_cast<uint64_t>(A[0].I)));
  });
  Simple("free", [](ExecutionEngine &, const std::vector<RuntimeValue> &) {
    return RuntimeValue(); // Bump allocator: free is a no-op.
  });
  Simple("sqrt", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::sqrt(A[0].F));
  });
  Simple("fabs", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::fabs(A[0].F));
  });
  Simple("exp", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::exp(A[0].F));
  });
  Simple("log", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::log(A[0].F));
  });
  Simple("sin", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::sin(A[0].F));
  });
  Simple("cos", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::cos(A[0].F));
  });
  Simple("pow", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::pow(A[0].F, A[1].F));
  });
  Simple("floor", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::floor(A[0].F));
  });
  Simple("clock_ns", [](ExecutionEngine &, const std::vector<RuntimeValue> &) {
    auto Now = std::chrono::steady_clock::now().time_since_epoch();
    return RuntimeValue::ofInt(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count());
  });
  Simple("abort_if_false",
         [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
           if (!(A[0].I & 1)) {
             std::fprintf(stderr, "abort_if_false: assertion failed\n");
             std::abort();
           }
           return RuntimeValue();
         });
}

} // namespace nir
