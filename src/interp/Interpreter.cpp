#include "interp/Interpreter.h"

#include "runtime/ThreadPool.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

using namespace nir;

namespace {

/// Tag prefix for function values stored in runtime slots. Host heap
/// addresses never carry the top byte 0xFE.
constexpr uint64_t FunctionTag = 0xFE00000000000000ull;

/// Live stack-frame memory regions, for CARAT's validity checks.
struct FrameRegistry {
  std::mutex Mutex;
  std::set<std::pair<uint64_t, uint64_t>> Regions; // (start, size)

  void add(uint64_t Start, uint64_t Size) {
    if (!Size)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    Regions.insert({Start, Size});
  }
  void remove(uint64_t Start, uint64_t Size) {
    if (!Size)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    Regions.erase({Start, Size});
  }
  bool contains(uint64_t Addr, uint64_t Bytes) {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Start, Size] : Regions)
      if (Addr >= Start && Addr + Bytes <= Start + Size)
        return true;
    return false;
  }
};

FrameRegistry &frameRegistry() {
  static FrameRegistry R;
  return R;
}

thread_local uint64_t ThreadRetired = 0;

} // namespace

//===----------------------------------------------------------------------===//
// Decoded representation
//===----------------------------------------------------------------------===//

namespace nir {

namespace {

struct Operand {
  bool IsImm = false;
  RuntimeValue Imm;
  uint32_t Reg = 0;
};

struct DecodedInst {
  Value::Kind K;
  uint8_t Sub = 0;       ///< binary op / cmp pred / cast op
  int32_t ResultReg = -1;
  std::vector<Operand> Ops;
  uint64_t Aux = 0;      ///< gep scale / alloca frame offset
  uint8_t MemSize = 8;   ///< load/store access width
  Type::Kind MemTy = Type::Kind::Int64;
  int32_t Succ0 = -1, Succ1 = -1;
  Function *DirectCallee = nullptr;
  /// Direct call to a defined function: its decoded-cache slot,
  /// pre-resolved at decode time so the hot call path skips the id map.
  std::atomic<ExecutionEngine::DecodedFunction *> *CalleeSlot = nullptr;
  /// Direct call to a declaration: dense index into the external table,
  /// pre-resolved at decode time (-1 when not a direct external call).
  int32_t ExternalId = -1;
  const Instruction *Orig = nullptr;
  uint32_t IdxInBlock = 0; ///< non-phi index, for partial retirement
};

struct PhiCopy {
  int32_t ResultReg;
  std::map<uint32_t, Operand> ByPredBlock;
};

struct DecodedBlock {
  const BasicBlock *BB = nullptr;
  std::vector<PhiCopy> Phis;
  std::vector<DecodedInst> Insts;
  uint64_t InstCount = 0; ///< including phis, for retirement accounting
};

} // namespace

struct ExecutionEngine::DecodedFunction {
  Function *F = nullptr;
  std::vector<DecodedBlock> Blocks;
  uint32_t NumRegs = 0;
  uint64_t FrameBytes = 0;
};

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

namespace {

uint8_t memSizeOf(const Type *Ty) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
  case Type::Kind::Int8:
    return 1;
  case Type::Kind::Int32:
    return 4;
  default:
    return 8;
  }
}

} // namespace

ExecutionEngine::DecodedFunction &ExecutionEngine::getDecoded(Function *F) {
  // Lock-free fast path: functions registered at construction have a
  // dense id whose cache slot is published (release) once decoding
  // finishes, so concurrent tasks re-entering a hot function never touch
  // the decode mutex.
  std::atomic<DecodedFunction *> *Slot = nullptr;
  {
    auto IdIt = FunctionIds.find(F); // map is immutable after construction
    if (IdIt != FunctionIds.end()) {
      Slot = &DecodedById[IdIt->second];
      if (DecodedFunction *Hit = Slot->load(std::memory_order_acquire))
        return *Hit;
    }
  }

  std::lock_guard<std::mutex> Lock(DecodeMutex);
  if (Slot) {
    if (DecodedFunction *Hit = Slot->load(std::memory_order_relaxed))
      return *Hit;
  } else {
    // Function created after engine construction: fall back to a map.
    auto It = DecodedOverflow.find(F);
    if (It != DecodedOverflow.end())
      return *It->second;
  }

  auto DF = std::make_unique<DecodedFunction>();
  DF->F = F;

  // Register numbering: arguments first, then value-producing
  // instructions.
  std::map<const Value *, uint32_t> RegOf;
  uint32_t NextReg = 0;
  for (unsigned I = 0; I < F->getNumArgs(); ++I)
    RegOf[F->getArg(I)] = NextReg++;
  for (const auto &BB : F->getBlocks())
    for (const auto &Inst : BB->getInstList())
      if (!Inst->getType()->isVoid())
        RegOf[Inst.get()] = NextReg++;
  DF->NumRegs = NextReg;

  // Block numbering.
  std::map<const BasicBlock *, uint32_t> BlockIdx;
  uint32_t NextBlock = 0;
  for (const auto &BB : F->getBlocks())
    BlockIdx[BB.get()] = NextBlock++;

  auto MakeOperand = [&](const Value *V) -> Operand {
    Operand Op;
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      Op.IsImm = true;
      Op.Imm = RuntimeValue::ofInt(CI->getValue());
      return Op;
    }
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      Op.IsImm = true;
      Op.Imm = RuntimeValue::ofFloat(CF->getValue());
      return Op;
    }
    if (isa<UndefValue>(V)) {
      Op.IsImm = true;
      Op.Imm = RuntimeValue::ofInt(0);
      return Op;
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      Op.IsImm = true;
      Op.Imm = RuntimeValue::ofPtr(getGlobalAddress(G));
      return Op;
    }
    if (const auto *Fn = dyn_cast<Function>(V)) {
      Op.IsImm = true;
      Op.Imm = RuntimeValue::ofPtr(encodeFunction(Fn));
      return Op;
    }
    auto It = RegOf.find(V);
    assert(It != RegOf.end() && "operand is not a register or constant");
    Op.Reg = It->second;
    return Op;
  };

  for (const auto &BB : F->getBlocks()) {
    DecodedBlock DB;
    DB.BB = BB.get();
    DB.InstCount = BB->size();
    for (const auto &InstPtr : BB->getInstList()) {
      const Instruction *I = InstPtr.get();
      if (const auto *Phi = dyn_cast<PhiInst>(I)) {
        PhiCopy PC;
        PC.ResultReg = static_cast<int32_t>(RegOf.at(Phi));
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K)
          PC.ByPredBlock[BlockIdx.at(Phi->getIncomingBlock(K))] =
              MakeOperand(Phi->getIncomingValue(K));
        DB.Phis.push_back(std::move(PC));
        continue;
      }

      DecodedInst DI;
      DI.K = I->getKind();
      DI.Orig = I;
      if (!I->getType()->isVoid())
        DI.ResultReg = static_cast<int32_t>(RegOf.at(I));

      switch (I->getKind()) {
      case Value::Kind::Alloca: {
        const auto *A = cast<AllocaInst>(I);
        // 8-byte align each allocation within the frame.
        DF->FrameBytes = (DF->FrameBytes + 7) & ~uint64_t(7);
        DI.Aux = DF->FrameBytes;
        DF->FrameBytes += A->getAllocationSize();
        break;
      }
      case Value::Kind::Load: {
        const auto *L = cast<LoadInst>(I);
        DI.Ops.push_back(MakeOperand(L->getPointerOperand()));
        DI.MemSize = memSizeOf(L->getType());
        DI.MemTy = L->getType()->getKind();
        break;
      }
      case Value::Kind::Store: {
        const auto *S = cast<StoreInst>(I);
        DI.Ops.push_back(MakeOperand(S->getValueOperand()));
        DI.Ops.push_back(MakeOperand(S->getPointerOperand()));
        DI.MemSize = memSizeOf(S->getValueOperand()->getType());
        DI.MemTy = S->getValueOperand()->getType()->getKind();
        break;
      }
      case Value::Kind::GEP: {
        const auto *G = cast<GEPInst>(I);
        DI.Ops.push_back(MakeOperand(G->getBase()));
        DI.Ops.push_back(MakeOperand(G->getIndex()));
        DI.Aux = G->getScale();
        break;
      }
      case Value::Kind::Binary: {
        const auto *B = cast<BinaryInst>(I);
        DI.Sub = static_cast<uint8_t>(B->getOp());
        DI.Ops.push_back(MakeOperand(B->getLHS()));
        DI.Ops.push_back(MakeOperand(B->getRHS()));
        break;
      }
      case Value::Kind::Cmp: {
        const auto *C = cast<CmpInst>(I);
        DI.Sub = static_cast<uint8_t>(C->getPred());
        DI.Ops.push_back(MakeOperand(C->getLHS()));
        DI.Ops.push_back(MakeOperand(C->getRHS()));
        break;
      }
      case Value::Kind::Cast: {
        const auto *C = cast<CastInst>(I);
        DI.Sub = static_cast<uint8_t>(C->getOp());
        DI.Ops.push_back(MakeOperand(C->getValueOperand()));
        DI.MemTy = C->getValueOperand()->getType()->getKind();
        DI.MemSize = memSizeOf(C->getType());
        break;
      }
      case Value::Kind::Select: {
        const auto *S = cast<SelectInst>(I);
        DI.Ops.push_back(MakeOperand(S->getCondition()));
        DI.Ops.push_back(MakeOperand(S->getTrueValue()));
        DI.Ops.push_back(MakeOperand(S->getFalseValue()));
        break;
      }
      case Value::Kind::Branch: {
        const auto *B = cast<BranchInst>(I);
        if (B->isConditional()) {
          DI.Ops.push_back(MakeOperand(B->getCondition()));
          DI.Succ0 = static_cast<int32_t>(BlockIdx.at(B->getSuccessor(0)));
          DI.Succ1 = static_cast<int32_t>(BlockIdx.at(B->getSuccessor(1)));
        } else {
          DI.Succ0 = static_cast<int32_t>(BlockIdx.at(B->getSuccessor(0)));
        }
        break;
      }
      case Value::Kind::Call: {
        const auto *C = cast<CallInst>(I);
        DI.DirectCallee = C->getCalledFunction();
        if (!DI.DirectCallee) {
          DI.Ops.push_back(MakeOperand(C->getCalleeOperand()));
        } else if (DI.DirectCallee->isDeclaration()) {
          // Pre-resolve the external to its dense slot (assigned now if
          // the implementation registers later).
          DI.ExternalId =
              static_cast<int32_t>(externalIdFor(DI.DirectCallee->getName()));
        } else {
          auto IdIt = FunctionIds.find(DI.DirectCallee);
          if (IdIt != FunctionIds.end())
            DI.CalleeSlot = &DecodedById[IdIt->second];
        }
        for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A)
          DI.Ops.push_back(MakeOperand(C->getArg(A)));
        break;
      }
      case Value::Kind::Ret: {
        const auto *R = cast<RetInst>(I);
        if (R->hasReturnValue())
          DI.Ops.push_back(MakeOperand(R->getReturnValue()));
        break;
      }
      case Value::Kind::Unreachable:
        break;
      default:
        assert(false && "unhandled instruction kind while decoding");
      }
      DI.IdxInBlock = static_cast<uint32_t>(DB.Insts.size());
      DB.Insts.push_back(std::move(DI));
    }
    DF->Blocks.push_back(std::move(DB));
  }

  auto &Ref = *DF;
  DecodedStore.push_back(std::move(DF));
  if (Slot)
    Slot->store(&Ref, std::memory_order_release);
  else
    DecodedOverflow[F] = &Ref;
  return Ref;
}

//===----------------------------------------------------------------------===//
// Engine lifecycle
//===----------------------------------------------------------------------===//

ExecutionEngine::ExecutionEngine(Module &M, Options Opts)
    : M(M), Opts(Opts) {
  // Lay out globals.
  uint64_t Total = 0;
  for (const auto &G : M.getGlobals()) {
    Total = (Total + 7) & ~uint64_t(7);
    Total += std::max<uint64_t>(G->getStoreSize(), 8);
  }
  GlobalStorage.resize(Total + 8, 0);
  uint64_t Offset = 0;
  for (const auto &G : M.getGlobals()) {
    Offset = (Offset + 7) & ~uint64_t(7);
    uint64_t Addr = reinterpret_cast<uint64_t>(GlobalStorage.data()) + Offset;
    GlobalAddr[G.get()] = Addr;
    const auto &Init = G->getInitWords();
    for (size_t W = 0; W < Init.size() && W * 8 < G->getStoreSize(); ++W)
      std::memcpy(GlobalStorage.data() + Offset + W * 8, &Init[W], 8);
    Offset += std::max<uint64_t>(G->getStoreSize(), 8);
  }

  Heap.resize(Opts.HeapBytes);

  // Function id table for function-pointer encoding and the dense
  // decoded-function cache.
  uint64_t Id = 0;
  for (const auto &F : M.getFunctions()) {
    FunctionIds[F.get()] = Id++;
    FunctionById.push_back(F.get());
  }
  DecodedById =
      std::make_unique<std::atomic<DecodedFunction *>[]>(FunctionById.size());
  for (size_t I = 0; I < FunctionById.size(); ++I)
    DecodedById[I].store(nullptr, std::memory_order_relaxed);

  installDefaultLibrary();
}

ExecutionEngine::~ExecutionEngine() = default;

uint64_t ExecutionEngine::heapAlloc(uint64_t Bytes) {
  uint64_t Aligned = (Bytes + 15) & ~uint64_t(15);
  // CAS loop: the bump must not be committed before the bounds check, or
  // a losing racer could hand out an overlapping region to a thread
  // whose own check passed against the already-bumped top.
  uint64_t Old = HeapTop.load(std::memory_order_relaxed);
  do {
    if (Aligned < Bytes || Aligned > Heap.size() ||
        Old > Heap.size() - Aligned) {
      std::fprintf(stderr, "interpreter heap exhausted\n");
      std::abort();
    }
  } while (!HeapTop.compare_exchange_weak(Old, Old + Aligned,
                                          std::memory_order_relaxed));
  return reinterpret_cast<uint64_t>(Heap.data()) + Old;
}

ThreadPool &ExecutionEngine::getThreadPool() {
  std::lock_guard<std::mutex> Lock(RuntimeStateMutex);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>();
  return *Pool;
}

QueueRegistry &ExecutionEngine::getQueueRegistry() {
  std::lock_guard<std::mutex> Lock(RuntimeStateMutex);
  if (!Queues)
    Queues = std::make_unique<QueueRegistry>();
  return *Queues;
}

uint64_t
ExecutionEngine::getGlobalAddress(const GlobalVariable *G) const {
  auto It = GlobalAddr.find(G);
  assert(It != GlobalAddr.end() && "global not laid out");
  return It->second;
}

bool ExecutionEngine::isValidAddress(uint64_t Addr, uint64_t Bytes) const {
  uint64_t GBase = reinterpret_cast<uint64_t>(GlobalStorage.data());
  if (Addr >= GBase && Addr + Bytes <= GBase + GlobalStorage.size())
    return true;
  uint64_t HBase = reinterpret_cast<uint64_t>(Heap.data());
  if (Addr >= HBase && Addr + Bytes <= HBase + HeapTop.load())
    return true;
  return frameRegistry().contains(Addr, Bytes);
}

uint64_t ExecutionEngine::encodeFunction(const Function *F) const {
  auto It = FunctionIds.find(F);
  assert(It != FunctionIds.end() && "function not registered");
  return FunctionTag | It->second;
}

Function *ExecutionEngine::decodeFunction(uint64_t Encoded) const {
  if ((Encoded & 0xFF00000000000000ull) != FunctionTag)
    return nullptr;
  uint64_t Id = Encoded & ~FunctionTag;
  return Id < FunctionById.size() ? FunctionById[Id] : nullptr;
}

uint32_t ExecutionEngine::externalIdFor(const std::string &Name) {
  auto It = ExternalIdByName.find(Name);
  if (It != ExternalIdByName.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(ExternalTable.size());
  ExternalIdByName.emplace(Name, Id);
  ExternalTable.emplace_back();
  return Id;
}

void ExecutionEngine::registerExternal(const std::string &Name,
                                       ExternalFn Fn) {
  std::lock_guard<std::mutex> Lock(DecodeMutex);
  ExternalTable[externalIdFor(Name)] = std::move(Fn);
}

void ExecutionEngine::appendOutput(const std::string &S) {
  std::lock_guard<std::mutex> Lock(OutputMutex);
  Output += S;
}

void ExecutionEngine::resetThreadRetired() { ThreadRetired = 0; }

uint64_t ExecutionEngine::readThreadRetired() { return ThreadRetired; }

void ExecutionEngine::recordDispatch(const DispatchRecord &R) {
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  Dispatches.push_back(R);
}

std::vector<DispatchRecord> ExecutionEngine::getDispatchRecords() const {
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  return Dispatches;
}

void ExecutionEngine::clearDispatchRecords() {
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  Dispatches.clear();
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

struct ExecutionEngine::Frame {
  std::vector<RuntimeValue> Regs;
  std::unique_ptr<uint8_t[]> FrameMem;
  uint64_t FrameBase = 0;
  uint64_t FrameSize = 0;
};

RuntimeValue
ExecutionEngine::execute(DecodedFunction &DF,
                         const std::vector<RuntimeValue> &Args,
                         unsigned Depth) {
  if (Depth > Opts.MaxCallDepth) {
    std::fprintf(stderr, "interpreter: call depth limit exceeded in @%s\n",
                 DF.F->getName().c_str());
    std::abort();
  }

  Frame Fr;
  Fr.Regs.resize(DF.NumRegs);
  for (size_t I = 0; I < Args.size() && I < DF.NumRegs; ++I)
    Fr.Regs[I] = Args[I];
  if (DF.FrameBytes) {
    Fr.FrameMem = std::make_unique<uint8_t[]>(DF.FrameBytes);
    std::memset(Fr.FrameMem.get(), 0, DF.FrameBytes);
    Fr.FrameBase = reinterpret_cast<uint64_t>(Fr.FrameMem.get());
    Fr.FrameSize = DF.FrameBytes;
    frameRegistry().add(Fr.FrameBase, Fr.FrameSize);
  }

  auto Val = [&](const Operand &Op) -> RuntimeValue {
    return Op.IsImm ? Op.Imm : Fr.Regs[Op.Reg];
  };

  uint32_t CurB = 0;
  RuntimeValue Result;
  // Retirement is accumulated locally and flushed on return: a shared
  // atomic bumped per block would serialize parallel tasks on one cache
  // line and erase the speedups Figure 5 measures.
  uint64_t Retired = 0;
  uint64_t PartialCounted = 0; ///< instructions already counted in CurB

  auto EnterBlock = [&](uint32_t Target, uint32_t From) {
    DecodedBlock &DB = DF.Blocks[Target];
    if (!DB.Phis.empty()) {
      // Simultaneous phi semantics: read everything, then write.
      // (Phi temps are small; a fixed stack buffer covers common cases.)
      RuntimeValue Temps[64];
      std::vector<RuntimeValue> Overflow;
      RuntimeValue *T = Temps;
      if (DB.Phis.size() > 64) {
        Overflow.resize(DB.Phis.size());
        T = Overflow.data();
      }
      for (size_t I = 0; I < DB.Phis.size(); ++I) {
        auto It = DB.Phis[I].ByPredBlock.find(From);
        assert(It != DB.Phis[I].ByPredBlock.end() &&
               "phi has no incoming value for the executed edge");
        T[I] = Val(It->second);
      }
      for (size_t I = 0; I < DB.Phis.size(); ++I)
        Fr.Regs[DB.Phis[I].ResultReg] = T[I];
    }
    CurB = Target;
  };

  for (;;) {
    DecodedBlock &DB = DF.Blocks[CurB];
    if (Observer)
      Observer->onBlockExecuted(DB.BB);
    if (Opts.MaxInstructions && Retired > Opts.MaxInstructions) {
      std::fprintf(stderr, "interpreter: instruction budget exceeded\n");
      std::abort();
    }

    bool Transferred = false;
    for (DecodedInst &DI : DB.Insts) {
      switch (DI.K) {
      case Value::Kind::Alloca:
        Fr.Regs[DI.ResultReg] = RuntimeValue::ofPtr(Fr.FrameBase + DI.Aux);
        break;
      case Value::Kind::Load: {
        uint64_t Addr = Val(DI.Ops[0]).P;
        RuntimeValue R;
        switch (DI.MemSize) {
        case 8:
          std::memcpy(&R.I, reinterpret_cast<void *>(Addr), 8);
          break;
        case 4: {
          int32_t V;
          std::memcpy(&V, reinterpret_cast<void *>(Addr), 4);
          R.I = V;
          break;
        }
        default: {
          uint8_t V;
          std::memcpy(&V, reinterpret_cast<void *>(Addr), 1);
          R.I = V;
          break;
        }
        }
        Fr.Regs[DI.ResultReg] = R;
        break;
      }
      case Value::Kind::Store: {
        RuntimeValue V = Val(DI.Ops[0]);
        uint64_t Addr = Val(DI.Ops[1]).P;
        switch (DI.MemSize) {
        case 8:
          std::memcpy(reinterpret_cast<void *>(Addr), &V.I, 8);
          break;
        case 4: {
          int32_t S = static_cast<int32_t>(V.I);
          std::memcpy(reinterpret_cast<void *>(Addr), &S, 4);
          break;
        }
        default: {
          uint8_t S = static_cast<uint8_t>(V.I);
          std::memcpy(reinterpret_cast<void *>(Addr), &S, 1);
          break;
        }
        }
        break;
      }
      case Value::Kind::GEP: {
        uint64_t Base = Val(DI.Ops[0]).P;
        int64_t Index = Val(DI.Ops[1]).I;
        Fr.Regs[DI.ResultReg] = RuntimeValue::ofPtr(
            Base + static_cast<uint64_t>(Index * static_cast<int64_t>(DI.Aux)));
        break;
      }
      case Value::Kind::Binary: {
        RuntimeValue L = Val(DI.Ops[0]);
        RuntimeValue R = Val(DI.Ops[1]);
        RuntimeValue Out;
        switch (static_cast<BinaryInst::Op>(DI.Sub)) {
        case BinaryInst::Op::Add:
          Out.I = L.I + R.I;
          break;
        case BinaryInst::Op::Sub:
          Out.I = L.I - R.I;
          break;
        case BinaryInst::Op::Mul:
          Out.I = L.I * R.I;
          break;
        case BinaryInst::Op::SDiv:
          Out.I = R.I ? L.I / R.I : 0;
          break;
        case BinaryInst::Op::SRem:
          Out.I = R.I ? L.I % R.I : 0;
          break;
        case BinaryInst::Op::And:
          Out.I = L.I & R.I;
          break;
        case BinaryInst::Op::Or:
          Out.I = L.I | R.I;
          break;
        case BinaryInst::Op::Xor:
          Out.I = L.I ^ R.I;
          break;
        case BinaryInst::Op::Shl:
          Out.I = L.I << (R.I & 63);
          break;
        case BinaryInst::Op::AShr:
          Out.I = L.I >> (R.I & 63);
          break;
        case BinaryInst::Op::FAdd:
          Out.F = L.F + R.F;
          break;
        case BinaryInst::Op::FSub:
          Out.F = L.F - R.F;
          break;
        case BinaryInst::Op::FMul:
          Out.F = L.F * R.F;
          break;
        case BinaryInst::Op::FDiv:
          Out.F = L.F / R.F;
          break;
        }
        Fr.Regs[DI.ResultReg] = Out;
        break;
      }
      case Value::Kind::Cmp: {
        RuntimeValue L = Val(DI.Ops[0]);
        RuntimeValue R = Val(DI.Ops[1]);
        bool B = false;
        switch (static_cast<CmpInst::Pred>(DI.Sub)) {
        case CmpInst::Pred::EQ:
          B = L.I == R.I;
          break;
        case CmpInst::Pred::NE:
          B = L.I != R.I;
          break;
        case CmpInst::Pred::SLT:
          B = L.I < R.I;
          break;
        case CmpInst::Pred::SLE:
          B = L.I <= R.I;
          break;
        case CmpInst::Pred::SGT:
          B = L.I > R.I;
          break;
        case CmpInst::Pred::SGE:
          B = L.I >= R.I;
          break;
        case CmpInst::Pred::FEQ:
          B = L.F == R.F;
          break;
        case CmpInst::Pred::FNE:
          B = L.F != R.F;
          break;
        case CmpInst::Pred::FLT:
          B = L.F < R.F;
          break;
        case CmpInst::Pred::FLE:
          B = L.F <= R.F;
          break;
        case CmpInst::Pred::FGT:
          B = L.F > R.F;
          break;
        case CmpInst::Pred::FGE:
          B = L.F >= R.F;
          break;
        }
        Fr.Regs[DI.ResultReg] = RuntimeValue::ofInt(B ? 1 : 0);
        break;
      }
      case Value::Kind::Cast: {
        RuntimeValue V = Val(DI.Ops[0]);
        RuntimeValue Out = V;
        switch (static_cast<CastInst::Op>(DI.Sub)) {
        case CastInst::Op::SExt: {
          // Canonical i8/i1 are zero-extended; re-sign-extend from width.
          if (DI.MemTy == Type::Kind::Int8)
            Out.I = static_cast<int8_t>(V.I);
          else if (DI.MemTy == Type::Kind::Int1)
            Out.I = (V.I & 1) ? -1 : 0;
          else
            Out.I = V.I; // i32 held sign-extended already
          break;
        }
        case CastInst::Op::ZExt:
          if (DI.MemTy == Type::Kind::Int32)
            Out.I = static_cast<uint32_t>(V.I);
          else
            Out.I = V.I; // i8/i1 canonical form is zero-extended
          break;
        case CastInst::Op::Trunc:
          switch (DI.MemSize) {
          case 4:
            Out.I = static_cast<int32_t>(V.I);
            break;
          case 1:
            Out.I = V.I & 0xFF;
            break;
          default:
            Out.I = V.I;
          }
          break;
        case CastInst::Op::SIToFP:
          Out.F = static_cast<double>(V.I);
          break;
        case CastInst::Op::FPToSI:
          Out.I = static_cast<int64_t>(V.F);
          break;
        case CastInst::Op::PtrToInt:
        case CastInst::Op::IntToPtr:
        case CastInst::Op::Bitcast:
          Out = V;
          break;
        }
        Fr.Regs[DI.ResultReg] = Out;
        break;
      }
      case Value::Kind::Select: {
        bool C = Val(DI.Ops[0]).I & 1;
        Fr.Regs[DI.ResultReg] = C ? Val(DI.Ops[1]) : Val(DI.Ops[2]);
        break;
      }
      case Value::Kind::Branch: {
        Retired += DB.InstCount - PartialCounted;
        PartialCounted = 0;
        uint32_t From = CurB;
        if (DI.Succ1 >= 0) {
          bool C = Val(DI.Ops[0]).I & 1;
          if (Observer)
            Observer->onBranchExecuted(cast<BranchInst>(DI.Orig), C ? 0 : 1);
          EnterBlock(C ? DI.Succ0 : DI.Succ1, From);
        } else {
          EnterBlock(DI.Succ0, From);
        }
        Transferred = true;
        break;
      }
      case Value::Kind::Call: {
        const auto *CI = cast<CallInst>(DI.Orig);
        Function *Callee = DI.DirectCallee;
        size_t ArgStart = 0;
        if (!Callee) {
          Callee = decodeFunction(Val(DI.Ops[0]).P);
          ArgStart = 1;
          if (!Callee) {
            std::fprintf(stderr,
                         "interpreter: indirect call to invalid target\n");
            std::abort();
          }
        }
        std::vector<RuntimeValue> CallArgs;
        CallArgs.reserve(DI.Ops.size() - ArgStart);
        for (size_t A = ArgStart; A < DI.Ops.size(); ++A)
          CallArgs.push_back(Val(DI.Ops[A]));

        RuntimeValue R;
        if (Callee->isDeclaration()) {
          // Flush retirement (including the partially executed current
          // block) so runtime externals such as ss_wait/ss_signal observe
          // an up-to-date per-thread counter.
          uint64_t SoFar = DB.Phis.size() + DI.IdxInBlock + 1;
          Retired += SoFar - PartialCounted;
          PartialCounted = SoFar;
          InstructionsRetired.fetch_add(Retired, std::memory_order_relaxed);
          ThreadRetired += Retired;
          Retired = 0;
          if (DI.ExternalId >= 0) {
            // Dense slot pre-resolved at decode time: no by-name lookup.
            const ExternalFn &Fn = ExternalTable[DI.ExternalId];
            if (!Fn) {
              std::fprintf(stderr,
                           "interpreter: no implementation for external "
                           "@%s\n",
                           Callee->getName().c_str());
              std::abort();
            }
            R = Fn(*this, CI, CallArgs);
          } else {
            R = callExternal(Callee, CI, CallArgs);
          }
        } else {
          if (Observer)
            Observer->onCallExecuted(CI, Callee);
          // Direct calls resolved their cache slot at decode time; the
          // load is lock-free once the callee has been decoded.
          DecodedFunction *CalleeDF =
              DI.CalleeSlot
                  ? DI.CalleeSlot->load(std::memory_order_acquire)
                  : nullptr;
          if (!CalleeDF)
            CalleeDF = &getDecoded(Callee);
          R = execute(*CalleeDF, CallArgs, Depth + 1);
        }
        if (DI.ResultReg >= 0)
          Fr.Regs[DI.ResultReg] = R;
        break;
      }
      case Value::Kind::Ret:
        if (!DI.Ops.empty())
          Result = Val(DI.Ops[0]);
        if (Fr.FrameSize)
          frameRegistry().remove(Fr.FrameBase, Fr.FrameSize);
        Retired += DB.InstCount - PartialCounted;
        InstructionsRetired.fetch_add(Retired, std::memory_order_relaxed);
        ThreadRetired += Retired;
        return Result;
      case Value::Kind::Unreachable:
        std::fprintf(stderr, "interpreter: reached 'unreachable' in @%s\n",
                     DF.F->getName().c_str());
        std::abort();
      default:
        assert(false && "unhandled instruction kind while executing");
      }
      if (Transferred)
        break;
    }
    assert(Transferred && "block fell through without a terminator");
  }
}

RuntimeValue
ExecutionEngine::runFunction(Function *F,
                             const std::vector<RuntimeValue> &Args) {
  assert(!F->isDeclaration() && "cannot run a declaration directly");
  return execute(getDecoded(F), Args, 0);
}

int64_t ExecutionEngine::runMain() {
  Function *Main = M.getFunction("main");
  assert(Main && "module has no @main");
  return runFunction(Main, {}).I;
}

//===----------------------------------------------------------------------===//
// External library
//===----------------------------------------------------------------------===//

RuntimeValue
ExecutionEngine::callExternal(Function *F, const CallInst *Call,
                              const std::vector<RuntimeValue> &Args) {
  // Slow by-name path for indirect calls to externals; direct external
  // calls resolve a dense slot at decode time and never come here.
  const ExternalFn *Fn = nullptr;
  {
    std::lock_guard<std::mutex> Lock(DecodeMutex);
    auto It = ExternalIdByName.find(F->getName());
    if (It != ExternalIdByName.end())
      Fn = &ExternalTable[It->second];
  }
  if (!Fn || !*Fn) {
    std::fprintf(stderr, "interpreter: no implementation for external @%s\n",
                 F->getName().c_str());
    std::abort();
  }
  // Deque slots are stable; call without the lock so externals may
  // re-enter the engine (dispatch, decode, nested calls).
  return (*Fn)(*this, Call, Args);
}

void ExecutionEngine::installDefaultLibrary() {
  auto Simple = [this](const std::string &Name,
                       std::function<RuntimeValue(
                           ExecutionEngine &, const std::vector<RuntimeValue> &)>
                           Fn) {
    registerExternal(Name, [Fn](ExecutionEngine &E, const CallInst *,
                                const std::vector<RuntimeValue> &A) {
      return Fn(E, A);
    });
  };

  Simple("print_i64",
         [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
           E.appendOutput(std::to_string(A[0].I) + "\n");
           return RuntimeValue();
         });
  Simple("print_f64",
         [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
           char Buf[64];
           std::snprintf(Buf, sizeof(Buf), "%.6f\n", A[0].F);
           E.appendOutput(Buf);
           return RuntimeValue();
         });
  Simple("print_char",
         [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
           E.appendOutput(std::string(1, static_cast<char>(A[0].I)));
           return RuntimeValue();
         });
  Simple("malloc", [](ExecutionEngine &E, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofPtr(E.heapAlloc(static_cast<uint64_t>(A[0].I)));
  });
  Simple("free", [](ExecutionEngine &, const std::vector<RuntimeValue> &) {
    return RuntimeValue(); // Bump allocator: free is a no-op.
  });
  Simple("sqrt", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::sqrt(A[0].F));
  });
  Simple("fabs", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::fabs(A[0].F));
  });
  Simple("exp", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::exp(A[0].F));
  });
  Simple("log", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::log(A[0].F));
  });
  Simple("sin", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::sin(A[0].F));
  });
  Simple("cos", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::cos(A[0].F));
  });
  Simple("pow", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::pow(A[0].F, A[1].F));
  });
  Simple("floor", [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
    return RuntimeValue::ofFloat(std::floor(A[0].F));
  });
  Simple("clock_ns", [](ExecutionEngine &, const std::vector<RuntimeValue> &) {
    auto Now = std::chrono::steady_clock::now().time_since_epoch();
    return RuntimeValue::ofInt(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count());
  });
  Simple("abort_if_false",
         [](ExecutionEngine &, const std::vector<RuntimeValue> &A) {
           if (!(A[0].I & 1)) {
             std::fprintf(stderr, "abort_if_false: assertion failed\n");
             std::abort();
           }
           return RuntimeValue();
         });
}

} // namespace nir
