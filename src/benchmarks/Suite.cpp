#include "benchmarks/Suite.h"

using namespace bench;

namespace {

std::vector<Benchmark> buildSuite() {
  std::vector<Benchmark> S;

  //===------------------------------------------------------------------===//
  // PARSEC-like kernels
  //===------------------------------------------------------------------===//

  S.push_back({"blackscholes", "PARSEC", R"(
    // Option pricing over independent options (PARSEC blackscholes):
    // pure DOALL over doubles with transcendental calls.
    double sptprice[512];
    double strike[512];
    double rate[512];
    double volatility[512];
    double otime[512];
    double prices[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) {
        sptprice[i] = 90.0 + (double)(i % 40);
        strike[i] = 95.0 + (double)(i % 30);
        rate[i] = 0.02 + 0.0001 * (double)(i % 7);
        volatility[i] = 0.2 + 0.001 * (double)(i % 13);
        otime[i] = 0.5 + 0.01 * (double)(i % 17);
      }
      price(sptprice, strike, rate, volatility, otime, prices, 512);
      double total = 0.0;
      for (int i = 0; i < 512; i = i + 1) total = total + prices[i];
      return (int)total;
    }
  )",
               "DOALL-friendly double kernel behind pointer params"});
  // (body continues in the helper below)
  S.back().Source = R"(
    double sptprice[512];
    double strike[512];
    double rate[512];
    double volatility[512];
    double otime[512];
    double prices[512];
    void price(double *sp, double *st, double *ra, double *vo,
               double *ot, double *out, int n) {
      for (int i = 0; i < n; i = i + 1) {
        double s = sp[i];
        double k = st[i];
        double r = ra[i];
        double v = vo[i];
        double t = ot[i];
        double sq = sqrt(t);
        double d1 = (log(s / k) + (r + 0.5 * v * v) * t) / (v * sq);
        double d2 = d1 - v * sq;
        // Polynomial CNDF approximation.
        double n1 = 1.0 / (1.0 + 0.2316419 * fabs(d1));
        double n2 = 1.0 / (1.0 + 0.2316419 * fabs(d2));
        double c1 = 0.3989423 * exp(-0.5 * d1 * d1) *
                    (0.3193815 * n1 + 0.7818 * n1 * n1 * n1);
        double c2 = 0.3989423 * exp(-0.5 * d2 * d2) *
                    (0.3193815 * n2 + 0.7818 * n2 * n2 * n2);
        double nd1 = c1;
        if (d1 >= 0.0) nd1 = 1.0 - c1;
        double nd2 = c2;
        if (d2 >= 0.0) nd2 = 1.0 - c2;
        out[i] = s * nd1 - k * exp(-r * t) * nd2;
      }
    }
    int main() {
      for (int i = 0; i < 512; i = i + 1) {
        sptprice[i] = 90.0 + (double)(i % 40);
        strike[i] = 95.0 + (double)(i % 30);
        rate[i] = 0.02 + 0.0001 * (double)(i % 7);
        volatility[i] = 0.2 + 0.001 * (double)(i % 13);
        otime[i] = 0.5 + 0.01 * (double)(i % 17);
      }
      price(sptprice, strike, rate, volatility, otime, prices, 512);
      double total = 0.0;
      for (int i = 0; i < 512; i = i + 1) total = total + prices[i];
      return (int)total;
    }
  )";

  S.push_back({"swaptions", "PARSEC", R"(
    // Monte-Carlo style per-path simulation (PARSEC swaptions): the
    // outer loop is DOALL; each path runs an inner recurrence privately.
    double results[256];
    int main() {
      for (int p = 0; p < 256; p = p + 1) {
        int seed = p * 2654435761 + 12345;
        double acc = 0.0;
        double ratepath = 0.05;
        for (int s = 0; s < 60; s = s + 1) {
          seed = (seed * 1103515245 + 12345) % 2147483647;
          if (seed < 0) seed = -seed;
          double shock = (double)(seed % 1000) / 1000.0 - 0.5;
          ratepath = ratepath + 0.001 * shock;
          acc = acc + ratepath;
        }
        results[p] = acc / 60.0;
      }
      double total = 0.0;
      for (int p = 0; p < 256; p = p + 1) total = total + results[p];
      return (int)(total * 1000.0);
    }
  )",
               "DOALL outer loop with private inner recurrences"});

  S.push_back({"streamcluster", "PARSEC", R"(
    // Distance evaluation of points against centers (PARSEC
    // streamcluster): DOALL over points, reduction of total cost.
    double px[256];
    double py[256];
    double cx[16];
    double cy[16];
    double cost[256];
    double wcfg[2];
    void assigncost(double *x, double *y, double *centx, double *centy,
                    double *out, int n, int k) {
      for (int i = 0; i < n; i = i + 1) {
        double wx = wcfg[0] + 1.0;   // invariant weight loads
        double wy = wcfg[1] + 1.0;
        double best = 1000000000.0;
        for (int c = 0; c < k; c = c + 1) {
          double dx = (x[i] - centx[c]) * wx;
          double dy = (y[i] - centy[c]) * wy;
          double d = dx * dx + dy * dy;
          if (d < best) best = d;
        }
        out[i] = best;
      }
    }
    int main() {
      wcfg[0] = 0.5;
      wcfg[1] = 0.25;
      for (int i = 0; i < 256; i = i + 1) {
        px[i] = (double)(i % 50) * 0.7;
        py[i] = (double)(i % 37) * 1.3;
      }
      for (int c = 0; c < 16; c = c + 1) {
        cx[c] = (double)(c * 3);
        cy[c] = (double)(c * 5);
      }
      assigncost(px, py, cx, cy, cost, 256, 16);
      double total = 0.0;
      for (int i = 0; i < 256; i = i + 1) total = total + cost[i];
      return (int)total;
    }
  )",
               "DOALL with inner min-search"});

  S.push_back({"fluidanimate", "PARSEC", R"(
    // Grid stencil stepping from one array into another (PARSEC
    // fluidanimate's neighbor averaging): DOALL per cell.
    double grid[1024];
    double next[1024];
    double visc[1];
    void relax(double *from, double *to, int n) {
      for (int i = 1; i < n - 1; i = i + 1) {
        double v = visc[0] * 0.25;     // invariant parameter load
        to[i] = v * from[i - 1] + (1.0 - 2.0 * v) * from[i] +
                v * from[i + 1];
      }
    }
    void copyback(double *from, double *to, int n) {
      for (int i = 1; i < n - 1; i = i + 1) to[i] = from[i];
    }
    int main() {
      visc[0] = 1.0;
      for (int i = 0; i < 1024; i = i + 1)
        grid[i] = (double)((i * 7) % 100) * 0.01;
      for (int step = 0; step < 8; step = step + 1) {
        relax(grid, next, 1024);
        copyback(next, grid, 1024);
      }
      double total = 0.0;
      for (int i = 0; i < 1024; i = i + 1) total = total + grid[i];
      return (int)(total * 100.0);
    }
  )",
               "double-buffered stencil, DOALL inner loops"});

  S.push_back({"canneal", "PARSEC", R"(
    // Annealing-style walk (PARSEC canneal): the RNG state is a
    // sequential recurrence but cost evaluation is heavy per iteration:
    // HELIX can overlap the evaluations.
    int placement[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) placement[i] = (i * 13) % 512;
      int rng = 42;
      int accepted = 0;
      for (int iter = 0; iter < 384; iter = iter + 1) {
        rng = (rng * 1103515245 + 12345) % 2147483647;
        if (rng < 0) rng = -rng;
        int a = rng % 512;
        int cost = 0;
        int base = a * 31;
        cost = cost + (base * base + 7) % 1009;
        cost = cost + ((base + 11) * (base + 3)) % 2003;
        cost = cost + ((base + 5) * (base + 17)) % 4001;
        accepted = accepted + cost % 2;
      }
      return accepted;
    }
  )",
               "sequential RNG + heavy independent evaluation (HELIX)"});

  S.push_back({"dedup", "PARSEC", R"(
    // Chunk -> hash -> accumulate pipeline (PARSEC dedup): classic DSWP
    // with a recurrence per stage.
    int data[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) data[i] = (i * 131) % 251;
      int h = 5381;
      int unique = 0;
      for (int i = 0; i < 512; i = i + 1) {
        h = (h * 33 + data[i]) % 1000003;      // stage 1: rolling hash
        unique = (unique + h % 7) % 65521;      // stage 2: dedup count
      }
      return unique;
    }
  )",
               "two-stage pipeline (DSWP)"});

  S.push_back({"ferret", "PARSEC", R"(
    // Feature-extraction -> ranking pipeline (PARSEC ferret): two
    // heavyweight sequential stages; DSWP's showcase.
    int querydata[256];
    int main() {
      for (int i = 0; i < 256; i = i + 1) querydata[i] = (i * 151 + 7) % 509;
      int fingerprint = 99991;
      int rank = 0;
      for (int i = 0; i < 256; i = i + 1) {
        // Stage 1: an expensive feature hash chained across queries.
        int f = fingerprint;
        f = (f * 31 + querydata[i]) % 1000003;
        f = (f * 33 + (f >> 3)) % 1000003;
        f = (f * 37 + (f >> 5)) % 1000003;
        f = (f * 41 + (f >> 7)) % 1000003;
        f = (f * 43 + (f >> 2)) % 1000003;
        f = (f * 47 + (f >> 4)) % 1000003;
        f = (f * 53 + (f >> 6)) % 1000003;
        f = (f * 59 + (f >> 8)) % 1000003;
        f = (f * 61 + (f >> 9)) % 1000003;
        f = (f * 67 + (f >> 2)) % 1000003;
        f = (f * 71 + (f >> 3)) % 1000003;
        f = (f * 73 + (f >> 5)) % 1000003;
        fingerprint = f;
        // Stage 2: an expensive ranking update chained on its own state.
        int r = rank;
        r = (r + f % 97) % 524287;
        r = (r * 3 + (r >> 1)) % 524287;
        r = (r * 5 + (r >> 2)) % 524287;
        r = (r * 7 + (r >> 3)) % 524287;
        r = (r * 11 + (r >> 4)) % 524287;
        r = (r * 13 + (r >> 5)) % 524287;
        r = (r * 17 + (r >> 6)) % 524287;
        r = (r * 19 + (r >> 7)) % 524287;
        r = (r * 23 + (r >> 8)) % 524287;
        r = (r * 29 + (r >> 9)) % 524287;
        r = (r * 31 + (r >> 2)) % 524287;
        r = (r * 37 + (r >> 3)) % 524287;
        rank = r;
      }
      return rank + fingerprint % 1009;
    }
  )",
               "two heavyweight chained stages (DSWP showcase)"});

  S.push_back({"x264", "PARSEC", R"(
    // Motion compensation (PARSEC x264 stand-in): each macroblock
    // writes one 16-pixel slice of the frame through a block-offset
    // table. The table is a permutation, so at runtime no two blocks
    // ever touch the same pixels -- but the indirect stores defeat
    // static disambiguation, leaving the block loop sequential for
    // every non-speculative technique.
    int off[256];
    int frame[4096];
    int main() {
      for (int i = 0; i < 256; i = i + 1) off[i] = ((i * 37) % 256) * 16;
      for (int i = 0; i < 4096; i = i + 1) frame[i] = (i * 7) % 251;
      for (int r = 0; r < 24; r = r + 1) {
        for (int b = 0; b < 256; b = b + 1) {
          int base = off[b];
          for (int k = 0; k < 16; k = k + 1) {
            frame[base + k] = frame[base + k] + ((b * 31 + k + r) % 97);
          }
        }
      }
      int sum = 0;
      for (int i = 0; i < 4096; i = i + 1) sum = sum + frame[i];
      return sum % 1000003;
    }
  )",
               "disjoint indirect block updates: statically sequential, "
               "parallel under speculation"});

  //===------------------------------------------------------------------===//
  // MiBench-like kernels
  //===------------------------------------------------------------------===//

  S.push_back({"crc", "MiBench", R"(
    // CRC over a buffer (MiBench CRC32): a tight register recurrence
    // with tiny per-iteration work. The paper calls this one out: no
    // technique speeds it up without memory-object cloning.
    int buf[2048];
    int main() {
      for (int i = 0; i < 2048; i = i + 1) buf[i] = (i * 7 + 3) % 256;
      int crc = 65535;
      int i = 0;
      do {
        crc = ((crc << 1) ^ (crc / 2) ^ buf[i]) % 65536;
        i = i + 1;
      } while (i < 2048);
      return crc;
    }
  )",
               "tiny-body recurrence: no profitable parallelism"});

  S.push_back({"dijkstra", "MiBench", R"(
    // Single-source shortest paths, O(V^2) (MiBench dijkstra): the
    // outer loop is inherently sequential; inner scans are small.
    int dist[128];
    int done[128];
    int weight[128];
    int main() {
      for (int i = 0; i < 128; i = i + 1) {
        dist[i] = 1000000;
        done[i] = 0;
        weight[i] = (i * 37 + 5) % 97 + 1;
      }
      dist[0] = 0;
      for (int round = 0; round < 128; round = round + 1) {
        int best = 1000001;
        int bestv = 0;
        for (int v = 0; v < 128; v = v + 1) {
          if (done[v] == 0 && dist[v] < best) {
            best = dist[v];
            bestv = v;
          }
        }
        done[bestv] = 1;
        for (int v = 0; v < 128; v = v + 1) {
          int w = (weight[bestv] + weight[v]) % 61 + 1;
          int cand = dist[bestv] + w;
          if (cand < dist[v]) dist[v] = cand;
        }
      }
      int sum = 0;
      for (int v = 0; v < 128; v = v + 1) sum = sum + dist[v];
      return sum;
    }
  )",
               "irregular, mostly sequential"});

  S.push_back({"fft", "MiBench", R"(
    // Direct DFT magnitude (MiBench fft stand-in): O(n^2) outer loop is
    // DOALL with private inner accumulation.
    double signal[256];
    double mag[128];
    void dft(double *sig, double *out, int n, int bins) {
      for (int k = 0; k < bins; k = k + 1) {
        double re = 0.0;
        double im = 0.0;
        for (int t = 0; t < n; t = t + 1) {
          double ang = 6.2831853 * (double)k * (double)t / (double)n;
          re = re + sig[t] * cos(ang);
          im = im - sig[t] * sin(ang);
        }
        out[k] = re * re + im * im;
      }
    }
    int main() {
      for (int i = 0; i < 256; i = i + 1)
        signal[i] = sin((double)i * 0.1) + 0.5 * sin((double)i * 0.3);
      dft(signal, mag, 256, 128);
      double total = 0.0;
      for (int k = 0; k < 128; k = k + 1) total = total + mag[k];
      return (int)total;
    }
  )",
               "DOALL outer loop, heavy trig inner loop"});

  S.push_back({"susan", "MiBench", R"(
    // Image smoothing stencil (MiBench susan): DOALL over pixels of a
    // 2D image stored row-major.
    int img[1024];
    int out[1024];
    int cfg[2];
    void smooth(int *src, int *dst, int n) {
      for (int p = 33; p < n - 33; p = p + 1) {
        int centerweight = cfg[0] * 2 + cfg[1];  // invariant config load
        int acc = src[p] * centerweight;
        acc = acc + src[p - 1] * 2 + src[p + 1] * 2;
        acc = acc + src[p - 32] * 2 + src[p + 32] * 2;
        acc = acc + src[p - 33] + src[p - 31];
        acc = acc + src[p + 31] + src[p + 33];
        dst[p] = acc / 16;
      }
    }
    int main() {
      cfg[0] = 2;
      cfg[1] = 0;
      for (int i = 0; i < 1024; i = i + 1) img[i] = (i * 29) % 256;
      smooth(img, out, 1024);
      int sum = 0;
      for (int p = 0; p < 1024; p = p + 1) sum = sum + out[p];
      return sum % 1000003;
    }
  )",
               "2D stencil, DOALL"});

  S.push_back({"sha", "MiBench", R"(
    // Block-chained digest (MiBench sha): each block mixes sequentially
    // into the running digest; per-block expansion has real work.
    int msg[1024];
    int main() {
      for (int i = 0; i < 1024; i = i + 1) msg[i] = (i * 101 + 7) % 256;
      int h = 1732584193;
      for (int b = 0; b < 1024; b = b + 1) {
        int w = msg[b];
        int t1 = ((w << 3) ^ (w / 4) + b) % 1000003;
        int t2 = (t1 * 5 + (t1 / 8)) % 1000003;
        h = ((h << 5) ^ h / 2) % 1000003 + t2;
      }
      return h % 999983;
    }
  )",
               "chained digest recurrence (HELIX candidate)"});

  S.push_back({"adpcm", "MiBench", R"(
    // ADPCM decode (MiBench adpcm): predictor state is a recurrence;
    // the quantization math per sample is moderate.
    int samples[1024];
    int decoded[1024];
    int main() {
      for (int i = 0; i < 1024; i = i + 1) samples[i] = (i * 17) % 16;
      int pred = 0;
      int step = 7;
      for (int i = 0; i < 1024; i = i + 1) {
        int delta = samples[i];
        int diff = (step * delta) / 4 + step / 8;
        if (delta >= 8) pred = pred - diff;
        else pred = pred + diff;
        if (pred > 32767) pred = 32767;
        if (pred < -32768) pred = -32768;
        step = (step * (90 + delta * 2)) / 88 + 1;
        if (step < 7) step = 7;
        if (step > 2048) step = 2048;
        decoded[i] = pred;
      }
      int sum = 0;
      for (int i = 0; i < 1024; i = i + 1) sum = sum + decoded[i];
      return sum % 1000003;
    }
  )",
               "predictor recurrence with conditional updates"});

  S.push_back({"stringsearch", "MiBench", R"(
    // Count pattern occurrences in a text (MiBench stringsearch):
    // DOALL over starting positions with a match reduction.
    char text[4096];
    int main() {
      for (int i = 0; i < 4096; i = i + 1)
        text[i] = 'a' + (i * 31 + i / 7) % 4;
      int matches = 0;
      for (int i = 0; i < 4090; i = i + 1) {
        int ok = 1;
        if (text[i] != 'a') ok = 0;
        if (text[i + 1] != 'b') ok = 0;
        if (text[i + 2] != 'a') ok = 0;
        matches = matches + ok;
      }
      return matches;
    }
  )",
               "DOALL scan with a sum reduction"});

  S.push_back({"basicmath", "MiBench", R"(
    // Independent cubic evaluations (MiBench basicmath): DOALL with
    // double math.
    double roots[512];
    int main() {
      for (int i = 0; i < 512; i = i + 1) {
        double a = 1.0 + (double)(i % 11) * 0.1;
        double b = -3.0 + (double)(i % 7) * 0.2;
        double c = 2.0 + (double)(i % 5) * 0.3;
        // Newton iterations on a*x^3 + b*x + c.
        double x = 1.0;
        for (int it = 0; it < 12; it = it + 1) {
          double f = a * x * x * x + b * x + c;
          double fp = 3.0 * a * x * x + b;
          x = x - f / fp;
        }
        roots[i] = x;
      }
      double total = 0.0;
      for (int i = 0; i < 512; i = i + 1) total = total + roots[i];
      return (int)(total * 100.0);
    }
  )",
               "DOALL with private Newton iterations"});

  //===------------------------------------------------------------------===//
  // SPEC-CPU2017-like kernels (loop-carried heavy; §4.4 expects only
  // 1-5% gains without speculation)
  //===------------------------------------------------------------------===//

  S.push_back({"mcf", "SPEC", R"(
    // Pointer-chasing over an index-linked structure (SPEC mcf):
    // the traversal order is a loop-carried dependence.
    int next[2048];
    int value[2048];
    int main() {
      for (int i = 0; i < 2048; i = i + 1) {
        next[i] = (i * 1021 + 17) % 2048;
        value[i] = (i * 53) % 997;
      }
      int node = 0;
      int acc = 0;
      for (int step = 0; step < 12288; step = step + 1) {
        acc = (acc + value[node]) % 1000003;
        node = next[node];
      }
      return acc;
    }
  )",
               "pointer chase: sequential"});

  S.push_back({"lbm", "SPEC", R"(
    // In-place lattice update (SPEC lbm simplified): the in-place
    // sweep carries dependences between neighboring cells.
    double cells[2048];
    int main() {
      for (int i = 0; i < 2048; i = i + 1)
        cells[i] = (double)((i * 13) % 100) * 0.01;
      for (int t = 0; t < 12; t = t + 1) {
        for (int i = 1; i < 2047; i = i + 1) {
          cells[i] = 0.4 * cells[i - 1] + 0.6 * cells[i]; // carried
        }
      }
      double total = 0.0;
      for (int i = 0; i < 2048; i = i + 1) total = total + cells[i];
      return (int)(total * 10.0);
    }
  )",
               "in-place sweep: loop-carried stencil"});

  S.push_back({"nab", "SPEC", R"(
    // Force accumulation through an indirection table (SPEC nab): the
    // scatter through idx[] defeats static disambiguation.
    int idx[1024];
    int force[256];
    int main() {
      for (int i = 0; i < 1024; i = i + 1) idx[i] = (i * 179) % 256;
      for (int i = 0; i < 256; i = i + 1) force[i] = 0;
      for (int round = 0; round < 4; round = round + 1) {
        for (int i = 0; i < 1024; i = i + 1) {
          int f = (i * i + 3 + round) % 211;
          force[idx[i]] = force[idx[i]] + f;   // indirect scatter
        }
      }
      int sum = 0;
      for (int i = 0; i < 256; i = i + 1) sum = sum + force[i];
      return sum;
    }
  )",
               "indirect scatter: statically sequential"});

  S.push_back({"imagick", "SPEC", R"(
    // Error-diffusion style filter (SPEC imagick stand-in): each pixel
    // depends on the previous pixel's output.
    int img[2048];
    int outp[2048];
    int main() {
      for (int i = 0; i < 2048; i = i + 1) img[i] = (i * 41) % 256;
      int carry = 0;
      for (int pass = 0; pass < 6; pass = pass + 1) {
        for (int i = 0; i < 2048; i = i + 1) {
          int v = img[i] + carry + outp[i] / 4;
          int q = 0;
          if (v > 127) q = 255;
          carry = (v - q) / 2;
          outp[i] = q;
        }
      }
      int sum = 0;
      for (int i = 0; i < 2048; i = i + 1) sum = sum + outp[i];
      return sum % 1000003;
    }
  )",
               "error diffusion: carried recurrence"});

  S.push_back({"xz", "SPEC", R"(
    // Match-length scanning with an adaptive state (SPEC xz stand-in):
    // sequential state machine over the input.
    int data[4096];
    int main() {
      for (int i = 0; i < 4096; i = i + 1) data[i] = (i * 2654435761) % 256;
      int state = 0;
      int out = 0;
      int pass = 0;
      do {
        int i = 0;
        do {
          int sym = data[i];
          state = (state * 31 + sym + pass) % 4096;
          if (state % 16 == 0) out = out + 1;
          i = i + 1;
        } while (i < 4096);
        pass = pass + 1;
      } while (pass < 4);
      return out * 17 + state % 97;
    }
  )",
               "adaptive state machine: sequential"});

  return S;
}

} // namespace

const std::vector<Benchmark> &bench::getBenchmarkSuite() {
  static const std::vector<Benchmark> Suite = buildSuite();
  return Suite;
}

std::vector<const Benchmark *> bench::getSuite(const std::string &Name) {
  std::vector<const Benchmark *> Out;
  for (const auto &B : getBenchmarkSuite())
    if (B.Suite == Name)
      Out.push_back(&B);
  return Out;
}

const Benchmark *bench::findBenchmark(const std::string &Name) {
  for (const auto &B : getBenchmarkSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
