//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite standing in for the paper's 41 benchmarks from
/// SPEC CPU2017, PARSEC 3.0, and MiBench. Each entry is a MiniC kernel
/// modeled on the code patterns of the original benchmark (regular
/// array loops, reductions, recurrences, stencils, pipelines, pointer
/// indirection), sized so interpretation stays fast while the hot loop
/// dominates execution.
///
//===----------------------------------------------------------------------===//

#ifndef BENCHMARKS_SUITE_H
#define BENCHMARKS_SUITE_H

#include <cstdint>
#include <string>
#include <vector>

namespace bench {

struct Benchmark {
  std::string Name;
  std::string Suite; ///< "PARSEC", "MiBench", or "SPEC"
  std::string Source; ///< MiniC
  /// What the paper's evaluation expects of this kernel (documentation
  /// only; the harnesses measure, they do not assume).
  std::string Character;
};

/// All benchmarks, grouped by suite (PARSEC first, then MiBench, then
/// SPEC-like).
const std::vector<Benchmark> &getBenchmarkSuite();

/// The subset from one suite.
std::vector<const Benchmark *> getSuite(const std::string &Name);

/// Lookup by name; null if absent.
const Benchmark *findBenchmark(const std::string &Name);

} // namespace bench

#endif // BENCHMARKS_SUITE_H
