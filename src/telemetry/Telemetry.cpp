#include "telemetry/Telemetry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace noelle;
using namespace noelle::telemetry;

//===----------------------------------------------------------------------===//
// Mode
//===----------------------------------------------------------------------===//

std::atomic<int> telemetry::detail::ModeCache{-1};

int telemetry::detail::initMode() {
  int Resolved = static_cast<int>(Mode::Off);
  if (const char *Env = std::getenv("NOELLE_TELEMETRY")) {
    if (std::strcmp(Env, "metrics") == 0 || std::strcmp(Env, "on") == 0)
      Resolved = static_cast<int>(Mode::Metrics);
    else if (std::strcmp(Env, "trace") == 0)
      Resolved = static_cast<int>(Mode::Trace);
  }
  // First resolver wins; racing threads agree because the env does not
  // change underneath the process.
  int Expected = -1;
  ModeCache.compare_exchange_strong(Expected, Resolved,
                                    std::memory_order_relaxed);
  return ModeCache.load(std::memory_order_relaxed);
}

Mode telemetry::mode() { return static_cast<Mode>(detail::modeValue()); }

void telemetry::setMode(Mode M) {
  detail::ModeCache.store(static_cast<int>(M), std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

namespace {

constexpr size_t NumCounters = static_cast<size_t>(Counter::kCount);
constexpr size_t NumGauges = static_cast<size_t>(Gauge::kCount);
constexpr size_t NumHists = static_cast<size_t>(Hist::kCount);
constexpr size_t NumBuckets = 64;

const char *const CounterNames[NumCounters] = {
    "pool.tasks_run",
    "pool.steals",
    "pool.parks",
    "pool.unparks",
    "runtime.dispatch.static",
    "runtime.dispatch.chunked",
    "runtime.dispatch.chunks",
    "runtime.prepare_memo.hit",
    "runtime.prepare_memo.miss",
    "runtime.ss_wait.fast",
    "runtime.ss_wait.stalled",
    "runtime.queue.push",
    "runtime.queue.pop",
    "interp.decode.hit",
    "interp.decode.miss",
    "interp.tier.threaded",
    "interp.tier.switch",
    "interp.tier.observed",
    "interp.fuse.site.cmp_br",
    "interp.fuse.site.gep_mem",
    "interp.fuse.site.mul_add",
    "interp.fuse.site.elided",
    "interp.fuse.fired",
    "noelle.pdg.embedded.hit",
    "noelle.pdg.embedded.miss",
    "noelle.pdg.functions_built",
    "planner.feedback.entries_measured",
    "planner.feedback.speedup_shortfall",
    "runtime.spec.commits",
    "runtime.spec.misspeculations",
};

const char *const GaugeNames[NumGauges] = {
    "pool.queue_depth",
    "pool.workers",
};

const char *const HistNames[NumHists] = {
    "pool.dispatch_to_start_ns",
    "runtime.dispatch_ns",
    "runtime.ss_wait.stall_ns",
    "runtime.queue.occupancy",
    "interp.decode_ns",
    "noelle.pdg.fn_build_ns",
};

} // namespace

const char *telemetry::counterName(Counter C) {
  return CounterNames[static_cast<size_t>(C)];
}
const char *telemetry::gaugeName(Gauge G) {
  return GaugeNames[static_cast<size_t>(G)];
}
const char *telemetry::histName(Hist H) {
  return HistNames[static_cast<size_t>(H)];
}

//===----------------------------------------------------------------------===//
// Registry: per-thread shards + retired accumulator
//===----------------------------------------------------------------------===//

namespace {

/// One thread's slice of every counter and histogram. The owner does
/// relaxed adds; snapshot/reset threads do relaxed loads/stores. Values
/// are monotone between resets, so a racy snapshot is still a valid
/// (slightly stale) total.
struct Shard {
  std::atomic<uint64_t> C[NumCounters] = {};
  std::atomic<uint64_t> HB[NumHists][NumBuckets] = {};
  std::atomic<uint64_t> HSum[NumHists] = {};
};

/// One thread's span buffer. The owner appends under `Lock` (never
/// contended in steady state); the trace writer swaps buffers out under
/// the same lock.
struct SpanBuf {
  struct Event {
    std::string Name;
    uint64_t StartNs;
    uint64_t DurNs;
    uint32_t Tid;
    TraceArgs A;
  };
  std::mutex Lock;
  uint32_t Tid = 0;
  std::vector<Event> Events;
};

struct Registry {
  std::mutex Lock;
  std::vector<Shard *> LiveShards;
  uint64_t RetiredC[NumCounters] = {};
  uint64_t RetiredHB[NumHists][NumBuckets] = {};
  uint64_t RetiredHSum[NumHists] = {};

  std::atomic<int64_t> GaugeVal[NumGauges] = {};
  std::atomic<int64_t> GaugeMax[NumGauges] = {};

  std::vector<SpanBuf *> LiveBufs;
  std::vector<SpanBuf::Event> RetiredEvents;
  uint32_t NextTid = 1;

  Shard *adoptShard() {
    auto *S = new Shard();
    std::lock_guard<std::mutex> G(Lock);
    LiveShards.push_back(S);
    return S;
  }

  void retireShard(Shard *S) {
    std::lock_guard<std::mutex> G(Lock);
    for (size_t I = 0; I < NumCounters; ++I)
      RetiredC[I] += S->C[I].load(std::memory_order_relaxed);
    for (size_t H = 0; H < NumHists; ++H) {
      for (size_t B = 0; B < NumBuckets; ++B)
        RetiredHB[H][B] += S->HB[H][B].load(std::memory_order_relaxed);
      RetiredHSum[H] += S->HSum[H].load(std::memory_order_relaxed);
    }
    LiveShards.erase(
        std::find(LiveShards.begin(), LiveShards.end(), S));
    delete S;
  }

  SpanBuf *adoptBuf() {
    auto *B = new SpanBuf();
    std::lock_guard<std::mutex> G(Lock);
    B->Tid = NextTid++;
    LiveBufs.push_back(B);
    return B;
  }

  void retireBuf(SpanBuf *B) {
    std::lock_guard<std::mutex> G(Lock);
    {
      std::lock_guard<std::mutex> BG(B->Lock);
      RetiredEvents.insert(RetiredEvents.end(),
                           std::make_move_iterator(B->Events.begin()),
                           std::make_move_iterator(B->Events.end()));
    }
    LiveBufs.erase(std::find(LiveBufs.begin(), LiveBufs.end(), B));
    delete B;
  }
};

/// Leaked singleton: thread_local destructors of late-exiting threads
/// must be able to retire into it after main returns.
Registry &registry() {
  static Registry *R = new Registry();
  return *R;
}

struct TlsSlot {
  Shard *S = nullptr;
  SpanBuf *B = nullptr;
  ~TlsSlot() {
    if (S)
      registry().retireShard(S);
    if (B)
      registry().retireBuf(B);
  }
};

thread_local TlsSlot Tls;

Shard &myShard() {
  if (!Tls.S)
    Tls.S = registry().adoptShard();
  return *Tls.S;
}

SpanBuf &myBuf() {
  if (!Tls.B)
    Tls.B = registry().adoptBuf();
  return *Tls.B;
}

/// Bucket index of a value: its bit width (0 for 0, 1 for 1, ...,
/// 63 for anything with the top bits set).
inline size_t bucketOf(uint64_t V) {
  size_t W = static_cast<size_t>(std::bit_width(V));
  return W < NumBuckets ? W : NumBuckets - 1;
}

} // namespace

void telemetry::detail::countSlow(Counter C, uint64_t N) {
  myShard().C[static_cast<size_t>(C)].fetch_add(N,
                                                std::memory_order_relaxed);
}

void telemetry::detail::histSlow(Hist H, uint64_t Value) {
  Shard &S = myShard();
  size_t HI = static_cast<size_t>(H);
  S.HB[HI][bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
  S.HSum[HI].fetch_add(Value, std::memory_order_relaxed);
}

void telemetry::detail::gaugeSetSlow(Gauge G, int64_t Value) {
  Registry &R = registry();
  size_t GI = static_cast<size_t>(G);
  R.GaugeVal[GI].store(Value, std::memory_order_relaxed);
  int64_t Max = R.GaugeMax[GI].load(std::memory_order_relaxed);
  while (Value > Max &&
         !R.GaugeMax[GI].compare_exchange_weak(Max, Value,
                                               std::memory_order_relaxed)) {
  }
}

void telemetry::detail::gaugeAddSlow(Gauge G, int64_t Delta) {
  Registry &R = registry();
  size_t GI = static_cast<size_t>(G);
  int64_t Value =
      R.GaugeVal[GI].fetch_add(Delta, std::memory_order_relaxed) + Delta;
  int64_t Max = R.GaugeMax[GI].load(std::memory_order_relaxed);
  while (Value > Max &&
         !R.GaugeMax[GI].compare_exchange_weak(Max, Value,
                                               std::memory_order_relaxed)) {
  }
}

void telemetry::detail::traceSpanSlow(std::string Name, uint64_t StartNs,
                                      uint64_t EndNs, TraceArgs A) {
  SpanBuf &B = myBuf();
  std::lock_guard<std::mutex> G(B.Lock);
  B.Events.push_back({std::move(Name), StartNs,
                      EndNs > StartNs ? EndNs - StartNs : 0, B.Tid, A});
}

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

double telemetry::histogramPercentile(const uint64_t (&Buckets)[64],
                                      double Q) {
  uint64_t Total = 0;
  for (uint64_t B : Buckets)
    Total += B;
  if (Total == 0)
    return 0.0;
  // Nearest-rank with linear interpolation inside the bucket: rank R in
  // [1, Total], bucket b spans [2^(b-1), 2^b - 1] (bucket 0 is exactly
  // zero).
  double Rank = Q * static_cast<double>(Total);
  if (Rank < 1.0)
    Rank = 1.0;
  uint64_t Cum = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    if (Buckets[B] == 0)
      continue;
    if (static_cast<double>(Cum + Buckets[B]) >= Rank) {
      if (B == 0)
        return 0.0;
      double Lo = static_cast<double>(1ull << (B - 1));
      double Hi = (B >= 63) ? Lo * 2.0
                            : static_cast<double>((1ull << B) - 1);
      double Within =
          (Rank - static_cast<double>(Cum)) / static_cast<double>(Buckets[B]);
      return Lo + (Hi - Lo) * Within;
    }
    Cum += Buckets[B];
  }
  return 0.0;
}

uint64_t MetricsSnapshot::counter(Counter C) const {
  size_t I = static_cast<size_t>(C);
  return I < Counters.size() ? Counters[I].second : 0;
}

const HistSnapshot *MetricsSnapshot::histogram(Hist H) const {
  size_t I = static_cast<size_t>(H);
  return I < Histograms.size() ? &Histograms[I].second : nullptr;
}

MetricsSnapshot telemetry::snapshotMetrics() {
  MetricsSnapshot Snap;
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);

  uint64_t C[NumCounters];
  uint64_t HB[NumHists][NumBuckets];
  uint64_t HSum[NumHists];
  std::memcpy(C, R.RetiredC, sizeof(C));
  std::memcpy(HB, R.RetiredHB, sizeof(HB));
  std::memcpy(HSum, R.RetiredHSum, sizeof(HSum));
  for (Shard *S : R.LiveShards) {
    for (size_t I = 0; I < NumCounters; ++I)
      C[I] += S->C[I].load(std::memory_order_relaxed);
    for (size_t H = 0; H < NumHists; ++H) {
      for (size_t B = 0; B < NumBuckets; ++B)
        HB[H][B] += S->HB[H][B].load(std::memory_order_relaxed);
      HSum[H] += S->HSum[H].load(std::memory_order_relaxed);
    }
  }

  Snap.Counters.reserve(NumCounters);
  for (size_t I = 0; I < NumCounters; ++I)
    Snap.Counters.emplace_back(CounterNames[I], C[I]);

  Snap.Gauges.reserve(NumGauges);
  for (size_t I = 0; I < NumGauges; ++I) {
    GaugeSnapshot GS;
    GS.Value = R.GaugeVal[I].load(std::memory_order_relaxed);
    GS.Max = R.GaugeMax[I].load(std::memory_order_relaxed);
    Snap.Gauges.emplace_back(GaugeNames[I], GS);
  }

  Snap.Histograms.reserve(NumHists);
  for (size_t H = 0; H < NumHists; ++H) {
    HistSnapshot HS;
    for (size_t B = 0; B < NumBuckets; ++B)
      HS.Count += HB[H][B];
    HS.Sum = HSum[H];
    HS.P50 = histogramPercentile(HB[H], 0.50);
    HS.P95 = histogramPercentile(HB[H], 0.95);
    HS.P99 = histogramPercentile(HB[H], 0.99);
    Snap.Histograms.emplace_back(HistNames[H], HS);
  }
  return Snap;
}

void telemetry::resetMetrics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  std::memset(R.RetiredC, 0, sizeof(R.RetiredC));
  std::memset(R.RetiredHB, 0, sizeof(R.RetiredHB));
  std::memset(R.RetiredHSum, 0, sizeof(R.RetiredHSum));
  for (Shard *S : R.LiveShards) {
    for (size_t I = 0; I < NumCounters; ++I)
      S->C[I].store(0, std::memory_order_relaxed);
    for (size_t H = 0; H < NumHists; ++H) {
      for (size_t B = 0; B < NumBuckets; ++B)
        S->HB[H][B].store(0, std::memory_order_relaxed);
      S->HSum[H].store(0, std::memory_order_relaxed);
    }
  }
  for (size_t I = 0; I < NumGauges; ++I) {
    R.GaugeVal[I].store(0, std::memory_order_relaxed);
    R.GaugeMax[I].store(0, std::memory_order_relaxed);
  }
}

void telemetry::clearTrace() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  R.RetiredEvents.clear();
  for (SpanBuf *B : R.LiveBufs) {
    std::lock_guard<std::mutex> BG(B->Lock);
    B->Events.clear();
  }
}

size_t telemetry::traceEventCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  size_t N = R.RetiredEvents.size();
  for (SpanBuf *B : R.LiveBufs) {
    std::lock_guard<std::mutex> BG(B->Lock);
    N += B->Events.size();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

std::string telemetry::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(Ch) & 0xFF);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

namespace {
std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}
} // namespace

JsonObject &JsonObject::add(const std::string &Key, uint64_t V) {
  return addRaw(Key, std::to_string(V));
}
JsonObject &JsonObject::add(const std::string &Key, int64_t V) {
  return addRaw(Key, std::to_string(V));
}
JsonObject &JsonObject::add(const std::string &Key, double V) {
  return addRaw(Key, fmtDouble(V));
}
JsonObject &JsonObject::add(const std::string &Key, const std::string &V) {
  return addRaw(Key, "\"" + jsonEscape(V) + "\"");
}
JsonObject &JsonObject::addRaw(const std::string &Key,
                               const std::string &RawJson) {
  Members.push_back("\"" + jsonEscape(Key) + "\": " + RawJson);
  return *this;
}
std::string JsonObject::str() const {
  std::string Out = "{";
  for (size_t I = 0; I < Members.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Members[I];
  }
  Out += "}";
  return Out;
}

std::string telemetry::metricsJson() {
  MetricsSnapshot Snap = snapshotMetrics();
  JsonObject Counters;
  for (const auto &[Name, V] : Snap.Counters)
    Counters.add(Name, V);
  JsonObject Gauges;
  for (const auto &[Name, G] : Snap.Gauges) {
    JsonObject GV;
    GV.add("value", G.Value).add("max", G.Max);
    Gauges.addRaw(Name, GV.str());
  }
  JsonObject Hists;
  for (const auto &[Name, H] : Snap.Histograms) {
    JsonObject HV;
    HV.add("count", H.Count)
        .add("sum", H.Sum)
        .add("p50", H.P50)
        .add("p95", H.P95)
        .add("p99", H.P99);
    Hists.addRaw(Name, HV.str());
  }
  JsonObject Root;
  Root.addRaw("counters", Counters.str())
      .addRaw("gauges", Gauges.str())
      .addRaw("histograms", Hists.str());
  return Root.str() + "\n";
}

std::string telemetry::traceJson() {
  // Gather every event (retired + live) under the registry lock.
  std::vector<SpanBuf::Event> Events;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> G(R.Lock);
    Events = R.RetiredEvents;
    for (SpanBuf *B : R.LiveBufs) {
      std::lock_guard<std::mutex> BG(B->Lock);
      Events.insert(Events.end(), B->Events.begin(), B->Events.end());
    }
  }
  std::sort(Events.begin(), Events.end(),
            [](const SpanBuf::Event &A, const SpanBuf::Event &B) {
              return A.StartNs < B.StartNs;
            });
  uint64_t Base = Events.empty() ? 0 : Events.front().StartNs;

  std::string Out = "{\"traceEvents\": [\n";
  for (size_t I = 0; I < Events.size(); ++I) {
    const SpanBuf::Event &E = Events[I];
    JsonObject Ev;
    Ev.add("name", E.Name)
        .add("ph", std::string("X"))
        .add("cat", std::string("noelle"))
        .addRaw("ts", fmtDouble(static_cast<double>(E.StartNs - Base) / 1e3))
        .addRaw("dur", fmtDouble(static_cast<double>(E.DurNs) / 1e3))
        .add("pid", static_cast<uint64_t>(1))
        .add("tid", static_cast<uint64_t>(E.Tid));
    if (E.A.K0) {
      JsonObject Args;
      Args.add(E.A.K0, E.A.V0);
      if (E.A.K1)
        Args.add(E.A.K1, E.A.V1);
      Ev.addRaw("args", Args.str());
    }
    Out += Ev.str();
    Out += (I + 1 == Events.size()) ? "\n" : ",\n";
  }
  Out += "]}\n";
  return Out;
}

bool telemetry::writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}
