//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide observability: a metrics registry (counters, gauges,
/// power-of-two-bucket latency histograms with percentile queries) and a
/// trace recorder emitting Chrome `trace_event` JSON.
///
/// Design constraints, in order:
///
///  1. Near-zero cost when disabled. Every recording entry point is an
///     inline guard — one relaxed atomic load and a predictable branch —
///     before any out-of-line work. `NOELLE_TELEMETRY=off` (the default)
///     keeps that branch never-taken; building with
///     -DNOELLE_TELEMETRY_DISABLED turns the guards into compile-time
///     constants so the instrumentation folds away entirely.
///
///  2. Thread-safe without hot-path locks. Counters and histogram
///     buckets live in lock-free per-thread shards (relaxed atomic adds;
///     the owning thread is the only writer, the snapshot reader only
///     loads). A shard is retired into a plain accumulator when its
///     thread exits, so totals survive worker churn and a snapshot is
///     the exact sum of everything ever recorded.
///
///  3. One output format. `metricsJson()` is the canonical snapshot
///     shape; the tools' `--stats` / `--metrics` flags and the bench
///     JSON emitters all build on the same `JsonObject` writer.
///
/// Modes (env `NOELLE_TELEMETRY`, overridable via `setMode`):
///   off     - nothing recorded (default)
///   metrics - counters/gauges/histograms
///   trace   - metrics + span events for the trace recorder
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_TELEMETRY_TELEMETRY_H
#define NOELLE_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace noelle {
namespace telemetry {

enum class Mode : int { Off = 0, Metrics = 1, Trace = 2 };

namespace detail {
/// -1 until the first query; then the resolved Mode. Relaxed loads are
/// fine: stale reads only delay enablement by one event.
extern std::atomic<int> ModeCache;
int initMode(); // parses NOELLE_TELEMETRY, publishes, returns the mode

inline int modeValue() {
  int M = ModeCache.load(std::memory_order_relaxed);
  return M >= 0 ? M : initMode();
}
} // namespace detail

/// True when counters/gauges/histograms record (modes metrics|trace).
inline bool metricsEnabled() {
#ifdef NOELLE_TELEMETRY_DISABLED
  return false;
#else
  return detail::modeValue() >= static_cast<int>(Mode::Metrics);
#endif
}

/// True when span events record (mode trace). Trace implies metrics.
inline bool traceEnabled() {
#ifdef NOELLE_TELEMETRY_DISABLED
  return false;
#else
  return detail::modeValue() >= static_cast<int>(Mode::Trace);
#endif
}

Mode mode();
/// Programmatic override (tools' --trace/--metrics flags, benches,
/// tests). A compile-time kill switch wins over any runtime mode.
void setMode(Mode M);

//===----------------------------------------------------------------------===//
// Metric identifiers
//===----------------------------------------------------------------------===//

/// Fixed registry: every counter is a slot in each per-thread shard, so
/// recording is an indexed relaxed add with no lookup.
enum class Counter : uint16_t {
  PoolTasksRun,      ///< jobs executed by pool workers
  PoolSteals,        ///< jobs taken from another worker's deque
  PoolParks,         ///< worker blocked on the idle condvar
  PoolUnparks,       ///< worker woken from the idle condvar
  DispatchStatic,    ///< noelle_dispatch calls (one job per task)
  DispatchChunked,   ///< noelle_dispatch_chunked calls
  DispatchChunks,    ///< chunks claimed by chunked-dispatch runners
  PrepareMemoHit,    ///< prepared-task memo hits
  PrepareMemoMiss,   ///< prepared-task memo misses (decode + prepare)
  SSWaitFast,        ///< ss_wait found the gate already open
  SSWaitStalled,     ///< ss_wait had to spin/park for the producer
  QueuePush,         ///< noelle_queue_push calls
  QueuePop,          ///< noelle_queue_pop calls
  DecodeHit,         ///< decode-cache hits (published slot or memo)
  DecodeMiss,        ///< full decodes
  TierThreaded,      ///< top-level entries into the computed-goto tier
  TierSwitch,        ///< top-level entries into the switch tier
  TierObserved,      ///< top-level entries into the observed tier
  FuseSiteCmpBr,     ///< fused compare-and-branch sites emitted
  FuseSiteGepMem,    ///< fused address (gep+load/store) sites emitted
  FuseSiteMulAdd,    ///< fused multiply-add sites emitted
  FuseSiteElided,    ///< producer instructions elided by fusion
  FuseFired,         ///< fused superinstructions executed (observed tier)
  PDGEmbeddedHit,    ///< whole-program PDG served from embedded cache
  PDGEmbeddedMiss,   ///< embedded cache absent/stale: full build
  PDGFunctionsBuilt, ///< per-function sub-PDGs constructed
  PlanMeasured,      ///< plan entries with measured speedup written back
  PlanShortfall,     ///< measured speedup < 0.8x of the plan's estimate
  SpecCommits,       ///< speculative dispatches validated and committed
  SpecMisspeculations, ///< speculative dispatches rolled back (conflict)
  kCount
};

enum class Gauge : uint8_t {
  PoolQueueDepth, ///< jobs queued in worker deques (value + watermark)
  PoolWorkers,    ///< workers created in the pool
  kCount
};

enum class Hist : uint8_t {
  DispatchToStartNs, ///< enqueue -> first instruction latency per job
  DispatchNs,        ///< whole noelle_dispatch[_chunked] wall time
  SSWaitStallNs,     ///< time ss_wait spent waiting for its producer
  QueueOccupancy,    ///< DSWP queue depth sampled at push/pop
  DecodeNs,          ///< full-decode latency per function
  PDGFnBuildNs,      ///< per-function sub-PDG build latency
  kCount
};

const char *counterName(Counter C);
const char *gaugeName(Gauge G);
const char *histName(Hist H);

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

namespace detail {
void countSlow(Counter C, uint64_t N);
void histSlow(Hist H, uint64_t Value);
void gaugeSetSlow(Gauge G, int64_t Value);
void gaugeAddSlow(Gauge G, int64_t Delta);
} // namespace detail

inline void count(Counter C, uint64_t N = 1) {
  if (!metricsEnabled() || N == 0)
    return;
  detail::countSlow(C, N);
}

inline void record(Hist H, uint64_t Value) {
  if (!metricsEnabled())
    return;
  detail::histSlow(H, Value);
}

/// Set a gauge's current value; its high-watermark updates via CAS-max.
inline void gaugeSet(Gauge G, int64_t Value) {
  if (!metricsEnabled())
    return;
  detail::gaugeSetSlow(G, Value);
}

inline void gaugeAdd(Gauge G, int64_t Delta) {
  if (!metricsEnabled())
    return;
  detail::gaugeAddSlow(G, Delta);
}

/// Monotonic nanoseconds; the time base for histograms and spans.
inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// Trace recorder
//===----------------------------------------------------------------------===//

/// Up to two integer arguments attached to a span. Keys must be string
/// literals (or otherwise outlive the trace): only the pointer is
/// stored.
struct TraceArgs {
  const char *K0 = nullptr;
  int64_t V0 = 0;
  const char *K1 = nullptr;
  int64_t V1 = 0;
};

namespace detail {
void traceSpanSlow(std::string Name, uint64_t StartNs, uint64_t EndNs,
                   TraceArgs A);
} // namespace detail

/// Record a completed span [StartNs, EndNs) on the calling thread's
/// track. The name is copied, so dynamic names (task function names)
/// are safe.
inline void traceSpan(std::string Name, uint64_t StartNs, uint64_t EndNs,
                      TraceArgs A = {}) {
  if (!traceEnabled())
    return;
  detail::traceSpanSlow(std::move(Name), StartNs, EndNs, A);
}

//===----------------------------------------------------------------------===//
// Snapshot and output
//===----------------------------------------------------------------------===//

struct HistSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  double P50 = 0;
  double P95 = 0;
  double P99 = 0;
};

struct GaugeSnapshot {
  int64_t Value = 0;
  int64_t Max = 0;
};

/// The merged view of every shard, live and retired. Entries appear for
/// every registered metric (zeros included) in enum order, so the JSON
/// schema is stable across runs.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, GaugeSnapshot>> Gauges;
  std::vector<std::pair<std::string, HistSnapshot>> Histograms;

  uint64_t counter(Counter C) const;
  const HistSnapshot *histogram(Hist H) const;
};

MetricsSnapshot snapshotMetrics();

/// Percentile from raw power-of-two buckets (exposed for tests; the
/// snapshot uses it for p50/p95/p99). `Buckets[i]` counts values whose
/// bit width is i (bucket 0 holds zeros); interpolation is linear
/// within a bucket, so the result is deterministic.
double histogramPercentile(const uint64_t (&Buckets)[64], double Q);

/// Canonical machine-readable snapshot:
/// {"counters":{...},"gauges":{...},"histograms":{...}}
std::string metricsJson();

/// Chrome trace_event JSON: {"traceEvents":[...]} with "X" (complete)
/// events, microsecond timestamps rebased to the earliest span, and one
/// tid per recording thread. Loadable in chrome://tracing and Perfetto.
std::string traceJson();

size_t traceEventCount();

/// Zero every counter/gauge/histogram (live shards included). Benches
/// use this to isolate phases.
void resetMetrics();
void clearTrace();

bool writeFile(const std::string &Path, const std::string &Text);

//===----------------------------------------------------------------------===//
// JSON building block shared with the tools' --stats emitters
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S);

/// Insertion-ordered JSON object writer. Values are formatted on add;
/// `addRaw` nests prebuilt JSON (another object's str()).
class JsonObject {
public:
  JsonObject &add(const std::string &Key, uint64_t V);
  JsonObject &add(const std::string &Key, int64_t V);
  JsonObject &add(const std::string &Key, int V) {
    return add(Key, static_cast<int64_t>(V));
  }
  JsonObject &add(const std::string &Key, double V);
  JsonObject &add(const std::string &Key, const std::string &V);
  JsonObject &addRaw(const std::string &Key, const std::string &RawJson);
  std::string str() const;

private:
  std::vector<std::string> Members;
};

} // namespace telemetry
} // namespace noelle

#endif // NOELLE_TELEMETRY_TELEMETRY_H
