//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-invariant code motion, pipeline edition. The logic is the
/// paper's Table 3 LICM: walk the loop forest innermost-first (FR), ask
/// the Algorithm-1/2 InvariantManager (INV) what is invariant, and hoist
/// with the loop builder (LB). The legacy xforms/LICM entry point is now
/// a thin wrapper over this function.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Instructions.h"
#include "ir/Verifier.h"

#include <set>

using namespace noelle;
using nir::Instruction;
using nir::LoopStructure;

namespace {

unsigned hoistLoop(Noelle &N, LoopContent &LC) {
  N.noteRequest(Abstraction::INV);
  N.noteRequest(Abstraction::LB);
  N.noteRequest(Abstraction::LS);
  LoopStructure &LS = LC.getLoopStructure();
  auto &Inv = LC.getInvariantManager();
  LoopBuilder &LB = N.getLoopBuilder();

  // Candidates, in program order so operand chains hoist in order.
  std::vector<Instruction *> ToHoist;
  for (Instruction *I : Inv.getInvariants()) {
    // Phis are position-dependent: an invariant (degenerate) phi can be
    // folded but never moved.
    if (nir::isa<nir::PhiInst>(I))
      continue;
    // INV already excludes stores/calls/phis/terminators. Loads must
    // additionally be safe to execute unconditionally: require the
    // address to be rooted at a global or alloca (never null/dangling).
    if (nir::isa<nir::LoadInst>(I)) {
      const nir::Value *Base =
          nir::cast<nir::LoadInst>(I)->getPointerOperand();
      while (const auto *G = nir::dyn_cast<nir::GEPInst>(Base))
        Base = G->getBase();
      if (!nir::isa<nir::GlobalVariable>(Base) &&
          !nir::isa<nir::AllocaInst>(Base))
        continue;
    }
    ToHoist.push_back(I);
  }

  // Hoist in dependence order: an instruction only moves after every
  // in-loop operand has moved (iterate to fixed point).
  unsigned Hoisted = 0;
  bool Changed = true;
  std::set<Instruction *> Moved;
  while (Changed) {
    Changed = false;
    for (Instruction *I : ToHoist) {
      if (Moved.count(I))
        continue;
      bool OperandsReady = true;
      for (const nir::Value *Op : I->operands()) {
        const auto *OpI = nir::dyn_cast<Instruction>(Op);
        if (OpI && LS.contains(OpI) &&
            !Moved.count(const_cast<Instruction *>(OpI)))
          OperandsReady = false;
      }
      if (!OperandsReady)
        continue;
      LB.hoistToPreheader(LS, I);
      Moved.insert(I);
      ++Hoisted;
      Changed = true;
    }
  }
  return Hoisted;
}

} // namespace

uint64_t noelle::opt::runLICM(Noelle &N, PipelineStats &S) {
  // Innermost-first via the loop forest (FR): hoisting from an inner
  // loop exposes invariants to its parent on the next sweep.
  N.noteRequest(Abstraction::FR);
  N.noteRequest(Abstraction::L);
  auto &LoopForest = N.getLoopForest();
  std::vector<LoopContent *> Order;
  LoopForest.visitPostorder(
      [&](Forest<LoopContent>::Node *Node) { Order.push_back(Node->Payload); });
  uint64_t Hoisted = 0;
  std::set<nir::Function *> Mutated;
  for (LoopContent *LC : Order) {
    ++S.LoopsVisited;
    unsigned H = hoistLoop(N, *LC);
    if (H)
      Mutated.insert(LC->getLoopStructure().getFunction());
    Hoisted += H;
  }
  if (Hoisted) {
    for (nir::Function *F : Mutated)
      N.invalidate(*F);
    assert(nir::moduleVerifies(N.getModule()) && "LICM broke the IR");
  }
  S.InstructionsHoisted += Hoisted;
  return Hoisted;
}
