//===----------------------------------------------------------------------===//
///
/// \file
/// Global value numbering: a dominator-tree preorder walk with a scoped
/// expression table, the classic dominator-based GVN. Only pure scalar
/// expressions participate (binaries, compares, casts, geps, selects);
/// loads and calls are skipped because their value depends on memory
/// state. Dominator trees come from the Noelle facade, so their lifetime
/// outlives the walk without any pass-manager bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "analysis/Dominators.h"
#include "ir/Instructions.h"

#include <map>
#include <tuple>

using namespace noelle;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::CastInst;
using nir::CmpInst;
using nir::GEPInst;
using nir::Instruction;
using nir::SelectInst;
using nir::Value;

namespace {

/// (kind tag, immediate payload, up to three operand identities).
using VNKey = std::tuple<unsigned, uint64_t, const Value *, const Value *,
                         const Value *>;

bool isCommutative(BinaryInst::Op Op) {
  switch (Op) {
  case BinaryInst::Op::Add:
  case BinaryInst::Op::Mul:
  case BinaryInst::Op::And:
  case BinaryInst::Op::Or:
  case BinaryInst::Op::Xor:
  case BinaryInst::Op::FAdd:
  case BinaryInst::Op::FMul:
    return true;
  default:
    return false;
  }
}

/// Key for \p I, or false if the instruction does not participate.
bool keyOf(const Instruction *I, VNKey &Out) {
  switch (I->getKind()) {
  case Value::Kind::Binary: {
    const auto *B = nir::cast<BinaryInst>(I);
    const Value *L = B->getLHS(), *R = B->getRHS();
    if (isCommutative(B->getOp()) && R < L)
      std::swap(L, R);
    Out = {1u + static_cast<unsigned>(B->getOp()), 0, L, R, nullptr};
    return true;
  }
  case Value::Kind::Cmp: {
    const auto *C = nir::cast<CmpInst>(I);
    // Result type participates: the frontend may materialize compare
    // results at different widths.
    Out = {100u + static_cast<unsigned>(C->getPred()), 0, C->getLHS(),
           C->getRHS(), reinterpret_cast<const Value *>(C->getType())};
    return true;
  }
  case Value::Kind::Cast: {
    const auto *C = nir::cast<CastInst>(I);
    // The destination type is interned, so its identity disambiguates.
    Out = {200u + static_cast<unsigned>(C->getOp()), 0, C->getValueOperand(),
           reinterpret_cast<const Value *>(C->getType()), nullptr};
    return true;
  }
  case Value::Kind::GEP: {
    const auto *G = nir::cast<GEPInst>(I);
    Out = {300u, G->getScale(), G->getBase(), G->getIndex(), nullptr};
    return true;
  }
  case Value::Kind::Select: {
    const auto *Sel = nir::cast<SelectInst>(I);
    Out = {400u, 0, Sel->getCondition(), Sel->getTrueValue(),
           Sel->getFalseValue()};
    return true;
  }
  default:
    return false;
  }
}

struct GVNWalker {
  nir::DominatorTree &DT;
  std::map<VNKey, Instruction *> Table;
  uint64_t Replaced = 0;

  void visit(BasicBlock *BB) {
    // Keys this scope introduced, removed when the subtree is done.
    std::vector<VNKey> Scope;
    std::vector<Instruction *> Dead;
    for (const auto &I : BB->getInstList()) {
      VNKey K;
      if (!keyOf(I.get(), K))
        continue;
      auto It = Table.find(K);
      if (It != Table.end()) {
        // Table entries come from dominator-tree ancestors (or earlier
        // in this block), so the replacement always dominates the use.
        I->replaceAllUsesWith(It->second);
        Dead.push_back(I.get());
        ++Replaced;
        continue;
      }
      Table.emplace(K, I.get());
      Scope.push_back(K);
    }
    for (Instruction *I : Dead)
      I->eraseFromParent();
    for (BasicBlock *Child : DT.getChildren(BB))
      visit(Child);
    for (const VNKey &K : Scope)
      Table.erase(K);
  }
};

} // namespace

uint64_t noelle::opt::runGVN(Noelle &N, PipelineStats &S) {
  uint64_t Replaced = 0;
  std::vector<nir::Function *> Mutated;
  for (const auto &F : N.getModule().getFunctions()) {
    if (F->isDeclaration())
      continue;
    GVNWalker W{N.getDominators(*F), {}, 0};
    W.visit(&F->getEntryBlock());
    if (W.Replaced)
      Mutated.push_back(F.get());
    Replaced += W.Replaced;
  }
  for (nir::Function *F : Mutated)
    N.invalidate(*F);
  S.GVNReplaced += Replaced;
  return Replaced;
}
