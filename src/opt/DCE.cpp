//===----------------------------------------------------------------------===//
///
/// \file
/// Dead code elimination: deletes unused instructions that neither write
/// memory nor transfer control, iterating to a fixed point so whole
/// dead chains (the scalar residue the vectorizer leaves behind) fall in
/// one run.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Instructions.h"

using namespace noelle;
using nir::Instruction;

namespace {

/// Instructions DCE may delete once their value is unused. Loads (scalar
/// and vector) are included: an unused load has no observable effect.
/// Calls stay — callees may have side effects the IR cannot see.
bool isRemovableKind(const Instruction *I) {
  switch (I->getKind()) {
  case nir::Value::Kind::Store:
  case nir::Value::Kind::VStore:
  case nir::Value::Kind::Call:
  case nir::Value::Kind::Branch:
  case nir::Value::Kind::Ret:
  case nir::Value::Kind::Unreachable:
    return false;
  default:
    return true;
  }
}

} // namespace

uint64_t noelle::opt::runDCE(nir::Module &M, PipelineStats &S) {
  uint64_t Removed = 0;
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F->getBlocks()) {
        // Collect first: eraseFromParent mutates the list under us.
        std::vector<Instruction *> Dead;
        for (const auto &I : BB->getInstList())
          if (!I->hasUses() && isRemovableKind(I.get()))
            Dead.push_back(I.get());
        for (Instruction *I : Dead) {
          I->eraseFromParent();
          ++Removed;
          Changed = true;
        }
      }
    }
  }
  S.DCERemoved += Removed;
  return Removed;
}
