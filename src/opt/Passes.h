//===----------------------------------------------------------------------===//
///
/// \file
/// The NIR-to-NIR optimization pipeline that runs in front of the
/// parallelizers: inlining, dominator-ordered GVN, DCE, NOELLE-driven
/// LICM (Algorithm 1's InvariantManager), IV-guided loop unrolling, and
/// an SLP-style superword vectorizer that packs isomorphic adjacent
/// scalar operations into NIR vector instructions. Each pass is a plain
/// function consuming the Noelle facade, so every abstraction request is
/// recorded (the Table 4 / ablation story) and analysis lifetimes stay
/// NOELLE-owned.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_PASSES_H
#define OPT_PASSES_H

#include "noelle/Noelle.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace noelle {
namespace opt {

/// Per-pass switches; defaults describe the full pipeline.
struct PipelineOptions {
  bool EnableInline = true;
  bool EnableGVN = true;
  bool EnableDCE = true;
  bool EnableLICM = true;
  bool EnableUnroll = true;
  bool EnableSLP = true;
  /// Preferred unroll factor; loops whose trip count the factor does not
  /// divide fall back to 2, then stay rolled.
  unsigned UnrollFactor = 4;
  /// Callees above this instruction count never inline.
  unsigned InlineBudget = 64;
  /// Cap on body growth per unrolled loop (cloned instructions).
  unsigned UnrollGrowthBudget = 400;
  /// Run nir::verifyModule after every pass and fail fast on errors.
  bool VerifyEach = true;
};

/// Counters the passes accumulate, plus the per-pass abstraction
/// consumption the ablation experiment prints.
struct PipelineStats {
  uint64_t CallsInlined = 0;
  uint64_t GVNReplaced = 0;
  uint64_t DCERemoved = 0;
  uint64_t LoopsVisited = 0;
  uint64_t InstructionsHoisted = 0;
  uint64_t LoopsUnrolled = 0;
  uint64_t VectorInstsEmitted = 0;
  uint64_t StoresVectorized = 0;
  /// (pass name, abstractions it requested) in pipeline order.
  std::vector<std::pair<std::string, AbstractionSet>> PassAbstractions;
};

/// Inlines small non-recursive direct calls (CG decides recursion).
/// Returns calls inlined.
uint64_t inlineFunctions(Noelle &N, const PipelineOptions &Opts,
                         PipelineStats &S);

/// Dominator-preorder global value numbering over pure scalar
/// instructions. Returns instructions replaced.
uint64_t runGVN(Noelle &N, PipelineStats &S);

/// Deletes unused side-effect-free instructions to a fixed point.
/// Returns instructions removed.
uint64_t runDCE(nir::Module &M, PipelineStats &S);

/// Hoists loop invariants to preheaders, innermost loops first, driven
/// by the InvariantManager (INV), loop builder (LB) and forest (FR).
/// Returns instructions hoisted.
uint64_t runLICM(Noelle &N, PipelineStats &S);

/// Partially unrolls innermost constant-trip-count loops whose governing
/// induction variable the IV manager proves affine. Returns loops
/// unrolled.
uint64_t runUnroll(Noelle &N, const PipelineOptions &Opts, PipelineStats &S);

/// Superword-level parallelism: packs runs of adjacent scalar stores and
/// their isomorphic operand trees into NIR vector instructions; legality
/// is discharged with the function PDG plus size-aware alias queries.
/// Returns vector instructions emitted.
uint64_t runSLP(Noelle &N, PipelineStats &S);

/// Runs the whole pipeline:
///   Inline, GVN, DCE, LICM, Unroll, GVN, DCE, SLP, DCE
/// verifying the module after every pass when Opts.VerifyEach is set.
PipelineStats runPipeline(nir::Module &M, const PipelineOptions &Opts = {});

} // namespace opt
} // namespace noelle

#endif // OPT_PASSES_H
