//===----------------------------------------------------------------------===//
///
/// \file
/// IV-guided partial loop unrolling. The induction-variable manager (IV)
/// proves the governing IV affine with constant start, step, and bound;
/// the exact trip count is then derived by directly evaluating the
/// governing compare with the interpreter's wrapping integer semantics,
/// so no closed-form trip-count formula can disagree with execution.
/// Only innermost loops whose body is a straight-line block chain
/// unroll, and only when the factor divides the trip count exactly —
/// the intermediate exit tests then evaluate to "continue" by
/// construction and are simply not emitted, which is where the win
/// comes from (fewer compares, branches, and dispatches per iteration).
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Instructions.h"

#include <map>
#include <set>

using namespace noelle;
using nir::BasicBlock;
using nir::BranchInst;
using nir::CmpInst;
using nir::ConstantInt;
using nir::Instruction;
using nir::LoopStructure;
using nir::PhiInst;
using nir::Value;

namespace {

/// The loop shapes we unroll: header = phis + cmp + condbr, body = a
/// straight-line chain of single-predecessor blocks ending at the latch.
struct LoopShape {
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *Preheader = nullptr;
  std::vector<BasicBlock *> Chain; ///< in-loop blocks after the header
  CmpInst *Cmp = nullptr;
  BranchInst *Br = nullptr;
  bool InLoopIsThen = false; ///< the taken edge that stays in the loop
  uint64_t BodyInsts = 0;
};

bool matchShape(LoopStructure &LS, LoopShape &Out) {
  if (!LS.getSubLoops().empty())
    return false;
  if (LS.getLatches().size() != 1)
    return false;
  Out.Header = LS.getHeader();
  Out.Latch = LS.getLatches().front();
  Out.Preheader = LS.getPreheader();
  if (!Out.Preheader)
    return false;

  // Header: phis, then exactly a compare and the conditional branch.
  Instruction *NonPhi = Out.Header->getFirstNonPhi();
  Out.Cmp = nir::dyn_cast<CmpInst>(NonPhi);
  if (!Out.Cmp)
    return false;
  Out.Br = nir::dyn_cast<BranchInst>(Out.Cmp->getNextInst());
  if (!Out.Br || !Out.Br->isConditional() ||
      Out.Br->getCondition() != Out.Cmp || Out.Br != Out.Header->getTerminator())
    return false;
  const bool ThenIn = LS.contains(Out.Br->getSuccessor(0));
  const bool ElseIn = LS.contains(Out.Br->getSuccessor(1));
  if (ThenIn == ElseIn)
    return false; // need one in-loop edge and one exit edge
  Out.InLoopIsThen = ThenIn;

  // Body: walk the in-loop edge to the latch through unconditional
  // branches; every block must have a single predecessor and no phis.
  BasicBlock *Cur = Out.Br->getSuccessor(ThenIn ? 0 : 1);
  std::set<BasicBlock *> Seen;
  while (true) {
    if (Cur == Out.Header || Seen.count(Cur) || !LS.contains(Cur))
      return false;
    if (Cur->predecessors().size() != 1)
      return false;
    if (nir::isa<PhiInst>(&*Cur->getInstList().front()))
      return false;
    Seen.insert(Cur);
    Out.Chain.push_back(Cur);
    Out.BodyInsts += Cur->getInstList().size();
    auto *T = nir::dyn_cast<BranchInst>(Cur->getTerminator());
    if (!T || T->isConditional())
      return false;
    if (Cur == Out.Latch) {
      if (T->getSuccessor(0) != Out.Header)
        return false;
      break;
    }
    Cur = T->getSuccessor(0);
  }
  // The chain plus the header must be the whole loop.
  if (Out.Chain.size() + 1 != LS.getBlocks().size())
    return false;

  // Copies re-enter mid-loop without re-executing the header, so no body
  // instruction (nor any back-edge value) may read a non-phi header
  // definition such as the governing compare — it would be stale in the
  // clones.
  auto IsNonPhiHeaderDef = [&](const Value *V) {
    const auto *I = nir::dyn_cast<Instruction>(V);
    return I && I->getParent() == Out.Header && !nir::isa<PhiInst>(I);
  };
  for (BasicBlock *BB : Out.Chain)
    for (const auto &I : BB->getInstList())
      for (const Value *Op : I->operands())
        if (IsNonPhiHeaderDef(Op))
          return false;
  for (const auto &I : Out.Header->getInstList()) {
    const auto *Phi = nir::dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    if (IsNonPhiHeaderDef(Phi->getIncomingValueForBlock(Out.Latch)))
      return false;
  }
  return true;
}

bool evalCmp(CmpInst::Pred P, int64_t L, int64_t R) {
  switch (P) {
  case CmpInst::Pred::EQ:
    return L == R;
  case CmpInst::Pred::NE:
    return L != R;
  case CmpInst::Pred::SLT:
    return L < R;
  case CmpInst::Pred::SLE:
    return L <= R;
  case CmpInst::Pred::SGT:
    return L > R;
  case CmpInst::Pred::SGE:
    return L >= R;
  default:
    return false; // FP predicates never govern an integer IV
  }
}

/// Exact trip count by evaluating the governing compare, or 0 when the
/// loop does not terminate within the cap (then it never unrolls).
uint64_t simulateTripCount(CmpInst::Pred P, bool IVIsLHS, bool InLoopOnTrue,
                           int64_t Start, int64_t Step, int64_t Bound) {
  constexpr uint64_t Cap = 1u << 22;
  uint64_t V = static_cast<uint64_t>(Start);
  for (uint64_t Trips = 0; Trips <= Cap; ++Trips) {
    const int64_t IV = static_cast<int64_t>(V);
    const bool Taken = IVIsLHS ? evalCmp(P, IV, Bound) : evalCmp(P, Bound, IV);
    if (Taken != InLoopOnTrue)
      return Trips;
    V += static_cast<uint64_t>(Step); // wrapping, like the interpreter
  }
  return 0;
}

/// Resolves \p V through the per-copy maps: body instructions map to the
/// current copy's clone, header phis to their value entering this copy.
Value *resolve(Value *V, const std::map<Value *, Value *> &CloneMap,
               const std::map<PhiInst *, Value *> &PhiVal) {
  if (auto It = CloneMap.find(V); It != CloneMap.end())
    return It->second;
  if (auto *Phi = nir::dyn_cast<PhiInst>(V))
    if (auto It = PhiVal.find(Phi); It != PhiVal.end())
      return It->second;
  return V;
}

void unrollBy(LoopShape &Sh, unsigned F) {
  nir::Function *Fn = Sh.Header->getParent();

  // Values each header phi carries into the next iteration.
  std::vector<PhiInst *> Phis;
  for (const auto &I : Sh.Header->getInstList()) {
    auto *Phi = nir::dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Phis.push_back(Phi);
  }
  std::map<PhiInst *, Value *> CurPhiVal; // value entering the next copy
  for (PhiInst *Phi : Phis)
    CurPhiVal[Phi] = Phi->getIncomingValueForBlock(Sh.Latch);

  BasicBlock *PrevLatch = Sh.Latch;
  for (unsigned C = 1; C != F; ++C) {
    std::map<Value *, Value *> CloneMap;
    std::vector<BasicBlock *> NewBlocks;
    for (BasicBlock *BB : Sh.Chain) {
      BasicBlock *NBB = Fn->createBlock(BB->getName() + ".u" +
                                        std::to_string(C));
      CloneMap[BB] = NBB;
      NewBlocks.push_back(NBB);
      for (const auto &I : BB->getInstList()) {
        Instruction *Clone = I->clone();
        NBB->push_back(std::unique_ptr<Instruction>(Clone));
        CloneMap[I.get()] = Clone;
      }
    }
    // Remap: same-copy defs to their clones, header phis to the value
    // they hold entering this copy, everything else (invariants, defs
    // from outside the loop) stays.
    for (BasicBlock *NBB : NewBlocks)
      for (const auto &I : NBB->getInstList())
        for (unsigned OpI = 0, OpE = I->getNumOperands(); OpI != OpE; ++OpI)
          I->setOperand(OpI, resolve(I->getOperand(OpI), CloneMap, CurPhiVal));

    // Chain the copy in: the previous latch falls through to this
    // copy's first block instead of the header.
    nir::cast<BranchInst>(PrevLatch->getTerminator())
        ->setSuccessor(0, NewBlocks.front());
    PrevLatch = NewBlocks.back();

    // Advance the phi carries: the value entering copy C+1 is this
    // copy's clone of the latch-incoming value (phis referencing other
    // phis read the snapshot from before this copy).
    std::map<PhiInst *, Value *> Next;
    for (PhiInst *Phi : Phis)
      Next[Phi] = resolve(Phi->getIncomingValueForBlock(Sh.Latch), CloneMap,
                          CurPhiVal);
    CurPhiVal = std::move(Next);
  }

  // Close the loop: the last copy branches back to the header, and the
  // header phis take their back-edge values from it.
  nir::cast<BranchInst>(PrevLatch->getTerminator())->setSuccessor(0, Sh.Header);
  // The whole unrolled body merges into the first chain block below, so
  // that block becomes the latch the phis name.
  BasicBlock *Merged = Sh.Chain.front();
  for (PhiInst *Phi : Phis) {
    int Idx = Phi->getBlockIndex(Sh.Latch);
    assert(Idx >= 0 && "latch must feed every header phi");
    Phi->setIncomingBlock(static_cast<unsigned>(Idx), Merged);
    Phi->setIncomingValue(static_cast<unsigned>(Idx), CurPhiVal[Phi]);
  }

  // Merge the straight-line chain of copies into one block: every
  // member has a single predecessor and an unconditional branch, and
  // the superword vectorizer only packs stores it sees in one block.
  while (true) {
    auto *T = nir::cast<BranchInst>(Merged->getTerminator());
    BasicBlock *Next = T->getSuccessor(0);
    if (Next == Sh.Header)
      break;
    std::vector<Instruction *> Pending;
    for (const auto &I : Next->getInstList())
      Pending.push_back(I.get());
    for (Instruction *I : Pending)
      I->moveBefore(T);
    T->eraseFromParent();
    Next->eraseFromParent();
  }
}

} // namespace

uint64_t noelle::opt::runUnroll(Noelle &N, const PipelineOptions &Opts,
                                PipelineStats &S) {
  N.noteRequest(Abstraction::IV);
  N.noteRequest(Abstraction::LS);
  N.noteRequest(Abstraction::FR);
  N.noteRequest(Abstraction::L);

  auto &LoopForest = N.getLoopForest();
  std::vector<LoopContent *> Order;
  LoopForest.visitPostorder(
      [&](Forest<LoopContent>::Node *Node) { Order.push_back(Node->Payload); });

  uint64_t Unrolled = 0;
  std::set<nir::Function *> Mutated;
  std::vector<LoopStructure *> Done;
  for (LoopContent *LC : Order) {
    LoopStructure &LS = LC->getLoopStructure();
    // Unrolling a loop leaves its ancestors' cached block sets stale
    // (they miss the clones), so ancestors skip this round; siblings
    // are untouched and proceed. Postorder guarantees descendants were
    // already handled.
    bool StaleAncestor = false;
    for (LoopStructure *U : Done)
      if (&LS != U && LS.contains(U->getHeader()))
        StaleAncestor = true;
    if (StaleAncestor)
      continue;

    LoopShape Sh;
    if (!matchShape(LS, Sh))
      continue;

    // The governing IV must be a header phi compared against a constant
    // with constant start and step.
    InductionVariable *IV = LC->getIVManager().getGoverningIV();
    if (!IV || !IV->hasConstantStep() || !IV->cmpUsesPhi() ||
        IV->getGoverningCmp() != Sh.Cmp)
      continue;
    const auto *Start = nir::dyn_cast<ConstantInt>(IV->getStartValue());
    if (!Start)
      continue;
    PhiInst *Phi = IV->getPhi();
    const bool IVIsLHS = Sh.Cmp->getLHS() == Phi;
    if (!IVIsLHS && Sh.Cmp->getRHS() != Phi)
      continue;
    Value *BoundV = IVIsLHS ? Sh.Cmp->getRHS() : Sh.Cmp->getLHS();
    const auto *Bound = nir::dyn_cast<ConstantInt>(BoundV);
    if (!Bound)
      continue;

    const uint64_t Trips = simulateTripCount(
        Sh.Cmp->getPred(), IVIsLHS, Sh.InLoopIsThen, Start->getValue(),
        IV->getConstantStep(), Bound->getValue());
    if (Trips < 2)
      continue;

    unsigned F = 0;
    for (unsigned Cand : {Opts.UnrollFactor, 2u}) {
      if (Cand >= 2 && Trips % Cand == 0 && Trips >= Cand &&
          Sh.BodyInsts * (Cand - 1) <= Opts.UnrollGrowthBudget) {
        F = Cand;
        break;
      }
    }
    if (F == 0)
      continue;

    unrollBy(Sh, F);
    Mutated.insert(LS.getFunction());
    Done.push_back(&LS);
    ++Unrolled;
  }

  for (nir::Function *Fn : Mutated)
    N.invalidate(*Fn);
  S.LoopsUnrolled += Unrolled;
  return Unrolled;
}
