//===----------------------------------------------------------------------===//
///
/// \file
/// Superword-level parallelism: packs runs of adjacent scalar stores and
/// the isomorphic scalar trees feeding them into NIR vector
/// instructions. Seeds are groups of stores in one block whose addresses
/// decompose to the same (base, variable index, scale) and constant
/// offsets one element apart — exactly what loop unrolling produces.
/// The operand trees vectorize recursively: isomorphic binaries become a
/// vbinary, adjacent loads a vload, anything else a vpack gather.
///
/// Legality: packing sinks every lane access to the emission point (just
/// before the last seed store), so each intervening instruction that may
/// touch memory must be independent of every lane. The function PDG
/// discharges most candidates for free (no memory edge between the
/// intervening instruction and any lane access means the dependence was
/// already disproved); the rest answer to size-aware alias queries over
/// the packed ranges. Lane accesses are the scalar program's own
/// accesses, so per-lane independence implies independence from the
/// packed range — their union.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "analysis/AliasAnalysis.h"
#include "ir/IRBuilder.h"
#include "ir/Instructions.h"

#include <algorithm>
#include <map>
#include <set>

using namespace noelle;
using nir::BasicBlock;
using nir::BinaryInst;
using nir::ConstantInt;
using nir::GEPInst;
using nir::Instruction;
using nir::LoadInst;
using nir::StoreInst;
using nir::Type;
using nir::Value;

namespace {

/// A scalar address decomposed into base + index*scale + offset, with at
/// most one variable index (constant gep indexes and constant
/// adjustments of the index fold into the offset).
struct AddrInfo {
  const Value *Base = nullptr;
  const Value *Index = nullptr; ///< null when fully constant
  uint64_t Scale = 0;
  int64_t Off = 0;
};

/// Peels add/sub-by-constant chains off an index value.
const Value *peelIndex(const Value *V, int64_t &Delta) {
  while (const auto *B = nir::dyn_cast<BinaryInst>(V)) {
    const auto *RC = nir::dyn_cast<ConstantInt>(B->getRHS());
    const auto *LC = nir::dyn_cast<ConstantInt>(B->getLHS());
    if (B->getOp() == BinaryInst::Op::Add && RC) {
      Delta += RC->getValue();
      V = B->getLHS();
    } else if (B->getOp() == BinaryInst::Op::Add && LC) {
      Delta += LC->getValue();
      V = B->getRHS();
    } else if (B->getOp() == BinaryInst::Op::Sub && RC) {
      Delta -= RC->getValue();
      V = B->getLHS();
    } else {
      break;
    }
  }
  return V;
}

bool decompose(const Value *Ptr, AddrInfo &Out) {
  Out = AddrInfo{};
  while (const auto *G = nir::dyn_cast<GEPInst>(Ptr)) {
    if (const auto *CI = nir::dyn_cast<ConstantInt>(G->getIndex())) {
      Out.Off += CI->getValue() * static_cast<int64_t>(G->getScale());
      Ptr = G->getBase();
      continue;
    }
    if (Out.Index)
      return false; // two variable indexes: give up
    int64_t Delta = 0;
    Out.Index = peelIndex(G->getIndex(), Delta);
    Out.Scale = G->getScale();
    Out.Off += Delta * static_cast<int64_t>(G->getScale());
    Ptr = G->getBase();
  }
  Out.Base = Ptr;
  return true;
}

bool sameSeries(const AddrInfo &A, const AddrInfo &B) {
  return A.Base == B.Base && A.Index == B.Index && A.Scale == B.Scale;
}

/// One buildable pack tree node.
struct TreeNode {
  enum class Kind { VBinary, VLoad, VPack } K;
  std::vector<Value *> Lanes;     ///< the scalar per-lane values
  BinaryInst::Op Op;              ///< VBinary only
  LoadInst *Lane0 = nullptr;      ///< VLoad only: lowest-address load
  std::vector<unsigned> Children; ///< indices into the tree
};

struct PackPlan {
  std::vector<TreeNode> Nodes; ///< node 0 is the root
  std::vector<StoreInst *> Seeds;
  StoreInst *Lane0Store = nullptr;
  AddrInfo StoreAddr; ///< decomposed lane-0 store address
  Type *ElemTy = nullptr;
  uint64_t ElemSize = 0;
  unsigned Lanes = 0;
  /// Scalar instructions the tree subsumes (loads and binaries).
  std::set<Instruction *> TreeScalars;
};

/// Recursively plans the vector tree for \p Lanes; returns the node
/// index. Always succeeds — the fallback is a vpack gather.
unsigned buildTree(PackPlan &P, const std::vector<Value *> &Lanes,
                   unsigned Depth) {
  const unsigned Idx = static_cast<unsigned>(P.Nodes.size());
  P.Nodes.push_back({TreeNode::Kind::VPack, Lanes, BinaryInst::Op::Add,
                     nullptr, {}});
  if (Depth >= 6)
    return Idx;

  // Distinct isomorphic binaries in one block vectorize directly.
  bool AllBinary = true;
  for (Value *V : Lanes) {
    const auto *B = nir::dyn_cast<BinaryInst>(V);
    if (!B || B->getParent() != P.Seeds.front()->getParent() ||
        B->getType() != P.ElemTy) {
      AllBinary = false;
      break;
    }
  }
  if (AllBinary) {
    std::set<Value *> Distinct(Lanes.begin(), Lanes.end());
    const auto Op = nir::cast<BinaryInst>(Lanes.front())->getOp();
    bool SameOp = Distinct.size() == Lanes.size();
    for (Value *V : Lanes)
      if (nir::cast<BinaryInst>(V)->getOp() != Op)
        SameOp = false;
    if (SameOp) {
      std::vector<Value *> L, R;
      for (Value *V : Lanes) {
        L.push_back(nir::cast<BinaryInst>(V)->getLHS());
        R.push_back(nir::cast<BinaryInst>(V)->getRHS());
      }
      P.Nodes[Idx].K = TreeNode::Kind::VBinary;
      P.Nodes[Idx].Op = Op;
      for (Value *V : Lanes)
        P.TreeScalars.insert(nir::cast<Instruction>(V));
      const unsigned LIdx = buildTree(P, L, Depth + 1);
      const unsigned RIdx = buildTree(P, R, Depth + 1);
      P.Nodes[Idx].Children = {LIdx, RIdx};
      return Idx;
    }
  }

  // Distinct loads from consecutive addresses, in lane order, fold to a
  // vload.
  bool AllLoads = true;
  AddrInfo First;
  for (unsigned I = 0; I < Lanes.size() && AllLoads; ++I) {
    auto *Ld = nir::dyn_cast<LoadInst>(Lanes[I]);
    AddrInfo A;
    if (!Ld || Ld->getParent() != P.Seeds.front()->getParent() ||
        Ld->getType() != P.ElemTy || !decompose(Ld->getPointerOperand(), A)) {
      AllLoads = false;
      break;
    }
    if (I == 0)
      First = A;
    else if (!sameSeries(First, A) ||
             A.Off != First.Off + static_cast<int64_t>(I * P.ElemSize))
      AllLoads = false;
  }
  if (AllLoads) {
    std::set<Value *> Distinct(Lanes.begin(), Lanes.end());
    if (Distinct.size() == Lanes.size()) {
      P.Nodes[Idx].K = TreeNode::Kind::VLoad;
      P.Nodes[Idx].Lane0 = nir::cast<LoadInst>(Lanes.front());
      for (Value *V : Lanes)
        P.TreeScalars.insert(nir::cast<Instruction>(V));
      return Idx;
    }
  }
  return Idx; // vpack gather
}

/// Combined legality oracle: NoAlias if either analysis proves it.
struct SizedAA {
  nir::BasicAliasAnalysis Basic;
  nir::AndersenAliasAnalysis Andersen;

  explicit SizedAA(nir::Module &M) : Andersen(M) {}

  bool mayOverlap(const Value *P1, uint64_t S1, const Value *P2,
                  uint64_t S2) {
    if (Basic.alias(P1, S1, P2, S2) == nir::AliasResult::NoAlias)
      return false;
    return Andersen.alias(P1, S1, P2, S2) != nir::AliasResult::NoAlias;
  }
};

/// True if the PDG records a memory dependence between \p X and any
/// instruction of the tree (either direction). No edge means the PDG
/// already disproved every pairwise dependence.
bool pdgHasMemEdge(PDG &DG, Instruction *X, const PackPlan &P) {
  auto Touches = [&](Value *Other) {
    if (const auto *I = nir::dyn_cast<Instruction>(Other)) {
      auto *MI = const_cast<Instruction *>(I);
      if (P.TreeScalars.count(MI))
        return true;
      for (StoreInst *S : P.Seeds)
        if (S == MI)
          return true;
    }
    return false;
  };
  for (const auto *E : DG.getOutEdges(X))
    if (E->IsMemory && Touches(E->To))
      return true;
  for (const auto *E : DG.getInEdges(X))
    if (E->IsMemory && Touches(E->From))
      return true;
  return false;
}

/// Packing sinks all lane accesses to just before the last seed store;
/// every intervening memory access must be independent of the packed
/// store range (reads and writes) and must not write any packed load
/// range.
bool isLegal(const PackPlan &P, PDG &DG, SizedAA &AA,
             const std::map<const Instruction *, unsigned> &Pos) {
  unsigned Lo = UINT32_MAX, Hi = 0;
  auto Widen = [&](const Instruction *I) {
    const unsigned Q = Pos.at(I);
    Lo = std::min(Lo, Q);
    Hi = std::max(Hi, Q);
  };
  for (Instruction *I : P.TreeScalars)
    Widen(I);
  for (StoreInst *S : P.Seeds)
    Widen(S);

  const uint64_t Range = P.ElemSize * P.Lanes;
  const Value *StorePtr = P.Lane0Store->getPointerOperand();
  std::vector<const Value *> LoadPtrs;

  // Intra-tree rule: a packed load range overlapping the packed store
  // range is only safe when the lanes align exactly (each lane reads the
  // element its own store writes — SSA already orders load before store
  // per lane, and cross-lane elements are disjoint), or when every tree
  // load precedes every seed store in program order (then the vload
  // still reads pre-store memory, like the scalars did).
  unsigned MinSeedPos = UINT32_MAX, MaxLoadPos = 0;
  for (StoreInst *Seed : P.Seeds)
    MinSeedPos = std::min(MinSeedPos, Pos.at(Seed));
  for (Instruction *I : P.TreeScalars)
    if (nir::isa<LoadInst>(I))
      MaxLoadPos = std::max(MaxLoadPos, Pos.at(I));
  for (const TreeNode &N : P.Nodes) {
    if (N.K != TreeNode::Kind::VLoad)
      continue;
    LoadPtrs.push_back(N.Lane0->getPointerOperand());
    AddrInfo LA;
    if (!decompose(N.Lane0->getPointerOperand(), LA))
      return false;
    const bool Aligned = sameSeries(LA, P.StoreAddr) && LA.Off == P.StoreAddr.Off;
    if (Aligned)
      continue;
    if (AA.mayOverlap(N.Lane0->getPointerOperand(), Range, StorePtr, Range) &&
        MaxLoadPos >= MinSeedPos)
      return false;
  }

  BasicBlock *BB = P.Lane0Store->getParent();
  for (const auto &I : BB->getInstList()) {
    const unsigned Q = Pos.at(I.get());
    if (Q <= Lo || Q >= Hi)
      continue;
    Instruction *X = I.get();
    if (P.TreeScalars.count(X))
      continue;
    if (std::find(P.Seeds.begin(), P.Seeds.end(), X) != P.Seeds.end())
      continue;
    if (!X->mayReadFromMemory() && !X->mayWriteToMemory())
      continue;
    // PDG first: an instruction with no memory edge into the tree was
    // already proven independent of every lane.
    if (!pdgHasMemEdge(DG, X, P))
      continue;
    nir::MemAccess Acc;
    if (!nir::memoryAccessOf(X, Acc))
      return false; // a call with unresolved effects: give up
    const uint64_t XSize = nir::accessGranule(Acc.Size);
    // Reads and writes must miss the packed store range (the stores
    // sink past them)...
    if (AA.mayOverlap(Acc.Ptr, XSize, StorePtr, Range))
      return false;
    // ...and writes must additionally miss every packed load range
    // (the loads sink past them).
    if (Acc.IsWrite)
      for (const Value *LP : LoadPtrs)
        if (AA.mayOverlap(Acc.Ptr, XSize, LP, Range))
          return false;
  }
  return true;
}

/// replaced-scalars > emitted-vector-instructions, counting only
/// scalars that actually die (all users inside the tree).
bool isProfitable(const PackPlan &P) {
  std::set<const Value *> InTree;
  for (Instruction *I : P.TreeScalars)
    InTree.insert(I);
  for (StoreInst *S : P.Seeds)
    InTree.insert(S);
  uint64_t Dying = P.Seeds.size();
  for (Instruction *I : P.TreeScalars) {
    bool AllInside = true;
    for (const auto &U : I->uses())
      if (!InTree.count(static_cast<const Value *>(U.TheUser)))
        AllInside = false;
    if (AllInside)
      ++Dying;
  }
  uint64_t Emitted = 1 + P.Nodes.size(); // vstore + tree nodes
  bool HasWork = false;
  for (const TreeNode &N : P.Nodes)
    if (N.K != TreeNode::Kind::VPack)
      HasWork = true;
  return HasWork && Dying > Emitted;
}

uint64_t emit(PackPlan &P, nir::Context &Ctx) {
  Type *VecTy = Ctx.getVectorTy(P.ElemTy, P.Lanes);
  nir::IRBuilder B(Ctx);
  StoreInst *Last = P.Seeds.back();
  B.setInsertPoint(Last);

  // Post-order emission so operands exist before their users.
  std::vector<Value *> Emitted(P.Nodes.size(), nullptr);
  // Nodes were appended parent-first, so reverse index order is a valid
  // post-order (children always have larger indices than their parent).
  for (unsigned I = static_cast<unsigned>(P.Nodes.size()); I-- > 0;) {
    TreeNode &N = P.Nodes[I];
    switch (N.K) {
    case TreeNode::Kind::VLoad:
      Emitted[I] = B.createVLoad(VecTy, N.Lane0->getPointerOperand());
      break;
    case TreeNode::Kind::VBinary:
      Emitted[I] = B.createVBinary(N.Op, Emitted[N.Children[0]],
                                   Emitted[N.Children[1]]);
      break;
    case TreeNode::Kind::VPack:
      Emitted[I] = B.createVPack(VecTy, N.Lanes);
      break;
    }
  }
  B.createVStore(Emitted[0], P.Lane0Store->getPointerOperand());

  for (StoreInst *S : P.Seeds)
    S->eraseFromParent();
  return P.Nodes.size() + 1;
}

bool isVectorizableElem(Type *Ty) {
  if (!Ty)
    return false;
  const uint64_t Sz = Ty->getStoreSize();
  return (Sz == 4 || Sz == 8) && !Ty->isVector() && !Ty->isVoid();
}

/// Finds and applies one pack in \p BB; returns emitted vector
/// instructions (0 when nothing vectorized).
uint64_t vectorizeOnce(BasicBlock *BB, PDG &DG, SizedAA &AA,
                       nir::Context &Ctx, uint64_t &StoresPacked) {
  // Group candidate stores by address series.
  struct Cand {
    StoreInst *S;
    AddrInfo A;
  };
  std::vector<std::vector<Cand>> Groups;
  std::map<const Instruction *, unsigned> Pos;
  unsigned Q = 0;
  for (const auto &I : BB->getInstList()) {
    Pos[I.get()] = Q++;
    auto *S = nir::dyn_cast<StoreInst>(I.get());
    if (!S || !isVectorizableElem(S->getValueOperand()->getType()))
      continue;
    AddrInfo A;
    if (!decompose(S->getPointerOperand(), A))
      continue;
    bool Placed = false;
    for (auto &G : Groups)
      if (sameSeries(G.front().A, A) &&
          G.front().S->getValueOperand()->getType() ==
              S->getValueOperand()->getType()) {
        G.push_back({S, A});
        Placed = true;
        break;
      }
    if (!Placed)
      Groups.push_back({{S, A}});
  }

  for (auto &G : Groups) {
    if (G.size() < 2)
      continue;
    std::sort(G.begin(), G.end(),
              [](const Cand &X, const Cand &Y) { return X.A.Off < Y.A.Off; });
    Type *ElemTy = G.front().S->getValueOperand()->getType();
    const uint64_t ES = ElemTy->getStoreSize();

    // Scan runs of consecutive offsets.
    for (size_t RunStart = 0; RunStart + 1 < G.size();) {
      size_t RunEnd = RunStart + 1;
      while (RunEnd < G.size() &&
             G[RunEnd].A.Off ==
                 G[RunEnd - 1].A.Off + static_cast<int64_t>(ES))
        ++RunEnd;
      const size_t RunLen = RunEnd - RunStart;
      const unsigned F = RunLen >= 4 ? 4u : (RunLen >= 2 ? 2u : 0u);
      if (F == 0) {
        RunStart = RunEnd;
        continue;
      }

      PackPlan P;
      P.ElemTy = ElemTy;
      P.ElemSize = ES;
      P.Lanes = F;
      for (size_t I = 0; I < F; ++I)
        P.Seeds.push_back(G[RunStart + I].S);
      P.Lane0Store = P.Seeds.front();
      P.StoreAddr = G[RunStart].A;
      // Emission happens before the program-order-last seed.
      std::sort(P.Seeds.begin(), P.Seeds.end(),
                [&](StoreInst *X, StoreInst *Y) {
                  return Pos.at(X) < Pos.at(Y);
                });
      std::vector<Value *> Lanes;
      for (size_t I = 0; I < F; ++I)
        Lanes.push_back(G[RunStart + I].S->getValueOperand());
      buildTree(P, Lanes, 0);

      if (isLegal(P, DG, AA, Pos) && isProfitable(P)) {
        StoresPacked += F;
        return emit(P, Ctx);
      }
      RunStart = RunEnd;
    }
  }
  return 0;
}

} // namespace

uint64_t noelle::opt::runSLP(Noelle &N, PipelineStats &S) {
  nir::Module &M = N.getModule();
  N.noteRequest(Abstraction::PDG);
  SizedAA AA(M);

  uint64_t Emitted = 0;
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    // One pack per round: erasing the seed stores orphans their PDG
    // nodes, so the function DG is refetched (rebuilt) after every pack
    // before any further edge queries.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      PDG &DG = N.getFunctionDG(*F);
      for (const auto &BB : F->getBlocks()) {
        const uint64_t E = vectorizeOnce(BB.get(), DG, AA, M.getContext(),
                                         S.StoresVectorized);
        if (E) {
          Emitted += E;
          N.invalidate(*F);
          Changed = true;
          break;
        }
      }
    }
  }
  S.VectorInstsEmitted += Emitted;
  return Emitted;
}
