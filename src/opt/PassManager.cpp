//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline driver: runs the passes in a fixed order over one Noelle
/// facade, records which abstraction each pass requested (the ablation
/// experiment's raw data), and — with VerifyEach — re-verifies the
/// module after every pass, aborting immediately on malformed IR so a
/// broken transform cannot masquerade as a miscompile downstream.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Verifier.h"

#include <cstdio>
#include <cstdlib>

using namespace noelle;
using namespace noelle::opt;

PipelineStats noelle::opt::runPipeline(nir::Module &M,
                                       const PipelineOptions &Opts) {
  PipelineStats S;
  Noelle N(M);

  auto RunPass = [&](const char *Name, bool Enabled, auto &&Fn) {
    if (!Enabled)
      return;
    N.resetRequestTracking();
    Fn();
    S.PassAbstractions.emplace_back(Name, N.getRequestedAbstractions());
    if (Opts.VerifyEach) {
      const auto Errors = nir::verifyModule(M);
      if (!Errors.empty()) {
        std::fprintf(stderr, "pipeline pass '%s' broke the IR:\n", Name);
        for (const auto &E : Errors)
          std::fprintf(stderr, "  %s\n", E.c_str());
        std::abort();
      }
    }
  };

  RunPass("inline", Opts.EnableInline,
          [&] { inlineFunctions(N, Opts, S); });
  RunPass("gvn", Opts.EnableGVN, [&] { runGVN(N, S); });
  RunPass("dce", Opts.EnableDCE, [&] { runDCE(M, S); });
  RunPass("licm", Opts.EnableLICM, [&] { runLICM(N, S); });
  RunPass("unroll", Opts.EnableUnroll, [&] { runUnroll(N, Opts, S); });
  // Unrolling exposes duplicated address math; clean it before packing.
  RunPass("gvn2", Opts.EnableGVN && Opts.EnableUnroll, [&] { runGVN(N, S); });
  RunPass("dce2", Opts.EnableDCE && Opts.EnableUnroll, [&] { runDCE(M, S); });
  RunPass("slp", Opts.EnableSLP, [&] { runSLP(N, S); });
  // The vectorizer leaves the replaced scalar chains behind on purpose;
  // this sweep deletes them.
  RunPass("dce3", Opts.EnableDCE && Opts.EnableSLP, [&] { runDCE(M, S); });

  return S;
}
