//===----------------------------------------------------------------------===//
///
/// \file
/// Function inlining with a size/benefit heuristic. Recursion is ruled
/// out with the complete call graph (CG) rather than a syntactic scan:
/// a callee is inlinable only when it cannot reach itself through any
/// chain of calls. The call site's block is split after the call, the
/// callee body is cloned with arguments and blocks remapped, returns
/// become branches to the tail block (joined by a phi when the call
/// produces a value), and the call disappears.
///
/// Callees containing allocas never inline: the interpreter zero-fills a
/// frame once per call, so a cloned alloca inside a caller loop would
/// see the previous iteration's bytes — a semantic change, not just a
/// layout one.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Instructions.h"

#include <map>
#include <set>

using namespace noelle;
using nir::BasicBlock;
using nir::BranchInst;
using nir::CallInst;
using nir::Function;
using nir::Instruction;
using nir::PhiInst;
using nir::RetInst;
using nir::Value;

namespace {

struct CalleeProfile {
  uint64_t NumInsts = 0;
  bool HasAlloca = false;
};

CalleeProfile profileOf(Function &F) {
  CalleeProfile P;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList()) {
      ++P.NumInsts;
      if (nir::isa<nir::AllocaInst>(I.get()))
        P.HasAlloca = true;
    }
  return P;
}

/// True when \p F can call back into itself through any call chain.
bool isRecursive(CallGraph &CG, Function *F) {
  std::vector<Function *> DirectCallees;
  for (auto *E : CG.getCallees(F))
    DirectCallees.push_back(E->Callee);
  if (DirectCallees.empty())
    return false;
  return CG.getReachableFrom(DirectCallees).count(F) != 0;
}

/// Inlines one call site. \p Call must be a direct call to a defined
/// function; the caller guarantees the heuristic already approved it.
void inlineCallSite(CallInst *Call) {
  Function *Caller = Call->getParent()->getParent();
  Function *Callee = Call->getCalledFunction();
  BasicBlock *BB = Call->getParent();

  // Split the block right after the call; the rest of it becomes the
  // tail block the cloned returns branch to. A call is never a
  // terminator, so a next instruction always exists.
  BasicBlock *TailBB =
      BB->splitBefore(Call->getNextInst(), BB->getName() + ".tail");
  // The terminator moved into the tail block, so phis naming BB as a
  // predecessor must name TailBB now.
  for (BasicBlock *Succ : TailBB->successors())
    for (const auto &I : Succ->getInstList()) {
      auto *Phi = nir::dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break;
      int Idx;
      while ((Idx = Phi->getBlockIndex(BB)) >= 0)
        Phi->setIncomingBlock(static_cast<unsigned>(Idx), TailBB);
    }

  // Clone the callee body: first materialize every block and
  // instruction, then remap operands (forward phi references need the
  // complete map).
  std::map<Value *, Value *> VMap;
  for (unsigned I = 0, E = Callee->getNumArgs(); I != E; ++I)
    VMap[Callee->getArg(I)] = Call->getArg(I);
  std::vector<BasicBlock *> NewBlocks;
  for (const auto &CBB : Callee->getBlocks()) {
    BasicBlock *NBB = Caller->createBlock(CBB->getName() + ".inl");
    VMap[CBB.get()] = NBB;
    NewBlocks.push_back(NBB);
    for (const auto &I : CBB->getInstList()) {
      Instruction *C = I->clone();
      NBB->push_back(std::unique_ptr<Instruction>(C));
      VMap[I.get()] = C;
    }
  }
  for (BasicBlock *NBB : NewBlocks)
    for (const auto &I : NBB->getInstList())
      for (unsigned OpI = 0, OpE = I->getNumOperands(); OpI != OpE; ++OpI) {
        auto Found = VMap.find(I->getOperand(OpI));
        if (Found != VMap.end())
          I->setOperand(OpI, Found->second);
      }

  // Returns become branches to the tail; a value-producing call joins
  // the returned values with a phi at the tail's head.
  std::vector<std::pair<BasicBlock *, Value *>> Rets;
  for (BasicBlock *NBB : NewBlocks) {
    auto *Ret = nir::dyn_cast<RetInst>(NBB->getTerminator());
    if (!Ret)
      continue;
    Value *RV = Ret->hasReturnValue() ? Ret->getReturnValue() : nullptr;
    Rets.emplace_back(NBB, RV);
    Ret->eraseFromParent();
    NBB->push_back(std::make_unique<BranchInst>(
        Caller->getParent()->getContext().getVoidTy(), TailBB));
  }

  // Enter the cloned body instead of calling.
  auto *Entry = nir::cast<BasicBlock>(VMap.at(&Callee->getEntryBlock()));
  nir::cast<BranchInst>(BB->getTerminator())->setSuccessor(0, Entry);

  if (!Call->getType()->isVoid()) {
    if (Rets.size() == 1) {
      Call->replaceAllUsesWith(Rets.front().second);
    } else {
      auto Join = std::make_unique<PhiInst>(Call->getType());
      for (auto &[RBB, RV] : Rets)
        Join->addIncoming(RV, RBB);
      PhiInst *JoinP = nir::cast<PhiInst>(
          TailBB->insert(TailBB->getInstList().begin()->get(),
                         std::move(Join)));
      Call->replaceAllUsesWith(JoinP);
    }
  }
  Call->eraseFromParent();
}

} // namespace

uint64_t noelle::opt::inlineFunctions(Noelle &N, const PipelineOptions &Opts,
                                      PipelineStats &S) {
  nir::Module &M = N.getModule();
  uint64_t Inlined = 0;
  // Chains (a calls b calls c) settle over a few rounds; the budget and
  // the recursion check bound total growth.
  for (unsigned Round = 0; Round < 4; ++Round) {
    N.noteRequest(Abstraction::CG);
    CallGraph &CG = N.getCallGraph();

    std::map<Function *, CalleeProfile> Profiles;
    std::set<Function *> Recursive;
    for (const auto &F : M.getFunctions())
      if (!F->isDeclaration()) {
        Profiles[F.get()] = profileOf(*F);
        if (isRecursive(CG, F.get()))
          Recursive.insert(F.get());
      }

    std::vector<CallInst *> Sites;
    for (const auto &F : M.getFunctions()) {
      if (F->isDeclaration())
        continue;
      for (const auto &BB : F->getBlocks())
        for (const auto &I : BB->getInstList()) {
          auto *Call = nir::dyn_cast<CallInst>(I.get());
          if (!Call)
            continue;
          Function *Callee = Call->getCalledFunction();
          if (!Callee || Callee->isDeclaration() || Callee == F.get())
            continue;
          if (Recursive.count(Callee) || Recursive.count(F.get()))
            continue;
          const CalleeProfile &P = Profiles[Callee];
          if (P.HasAlloca || P.NumInsts > Opts.InlineBudget)
            continue;
          Sites.push_back(Call);
        }
    }
    if (Sites.empty())
      break;

    std::set<Function *> Mutated;
    for (CallInst *Call : Sites) {
      Mutated.insert(Call->getParent()->getParent());
      inlineCallSite(Call);
      ++Inlined;
    }
    for (Function *F : Mutated)
      N.invalidate(*F);
  }
  S.CallsInlined += Inlined;
  return Inlined;
}
