//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's scheduler abstraction (SCD): semantics-preserving instruction
/// motion within and between basic blocks, with legality decided by the
/// PDG. A hierarchy of schedulers (generic -> basic-block -> loop)
/// specializes the capabilities, as in the paper's Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_SCHEDULER_H
#define NOELLE_SCHEDULER_H

#include "analysis/Dominators.h"
#include "noelle/PDG.h"

#include <functional>

namespace noelle {

using nir::BasicBlock;
using nir::DominatorTree;

/// Generic scheduler: PDG-checked movement primitives.
class Scheduler {
public:
  Scheduler(PDG &FnDG, DominatorTree &DT) : FnDG(FnDG), DT(DT) {}
  virtual ~Scheduler() = default;

  /// True if moving \p I immediately before \p Pos (same block) keeps
  /// all PDG-ordered pairs in order.
  bool canMoveBefore(Instruction *I, Instruction *Pos) const;

  /// Moves \p I before \p Pos if legal; returns whether it moved.
  bool moveBefore(Instruction *I, Instruction *Pos) const;

  /// True if \p I could be duplicated/placed at the end of \p BB: every
  /// operand dominates BB's terminator and I has no ordering hazards
  /// (pure, non-terminator).
  bool canPlaceAtEndOf(Instruction *I, BasicBlock *BB) const;

protected:
  PDG &FnDG;
  DominatorTree &DT;
};

/// Basic-block scheduler: list-schedules one block bottom-up to sink
/// cheap producers toward consumers (used by Time-Squeezer to shape
/// clock-period regions).
class BasicBlockScheduler : public Scheduler {
public:
  using Scheduler::Scheduler;

  /// Reorders \p BB respecting every PDG edge; returns the number of
  /// instructions that changed position. The priority function returns a
  /// rank: lower ranks schedule earlier.
  unsigned schedule(BasicBlock *BB,
                    const std::function<int(const Instruction *)> &Rank) const;
};

/// Loop scheduler: capabilities specialized to a loop, e.g. shrinking
/// the header by sinking non-phi header instructions into the body
/// (HELIX uses this to reduce sequential-segment size).
class LoopScheduler : public Scheduler {
public:
  LoopScheduler(PDG &FnDG, DominatorTree &DT, nir::LoopStructure &L)
      : Scheduler(FnDG, DT), L(L) {}

  /// Sinks header instructions not needed by the exit condition below
  /// the header when legal. Returns how many instructions moved.
  unsigned shrinkHeader() const;

private:
  nir::LoopStructure &L;
};

} // namespace noelle

#endif // NOELLE_SCHEDULER_H
