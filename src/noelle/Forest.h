//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's forest abstraction (FR): a forest of trees whose nodes can be
/// deleted while preserving connectivity — the children of a deleted node
/// re-attach to its parent (Section 2.2, Table 1). LICM and the
/// parallelizers walk the loop-nesting forest through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_FOREST_H
#define NOELLE_FOREST_H

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <vector>

namespace noelle {

/// A forest of trees over payloads of type T.
template <typename T> class Forest {
public:
  struct Node {
    T *Payload = nullptr;
    Node *Parent = nullptr;
    std::vector<Node *> Children;

    bool isRoot() const { return Parent == nullptr; }
    unsigned getDepth() const {
      unsigned D = 0;
      for (const Node *N = Parent; N; N = N->Parent)
        ++D;
      return D;
    }
  };

  /// Adds a node holding \p Payload under \p Parent (null = new root).
  Node *addNode(T *Payload, Node *Parent) {
    auto N = std::make_unique<Node>();
    N->Payload = Payload;
    N->Parent = Parent;
    Node *Raw = N.get();
    Nodes.push_back(std::move(N));
    if (Parent)
      Parent->Children.push_back(Raw);
    else
      Roots.push_back(Raw);
    return Raw;
  }

  /// Deletes \p N; its children re-attach to N's parent (or become
  /// roots), preserving ancestor/descendant relations of the survivors.
  void removeNode(Node *N) {
    Node *Parent = N->Parent;
    // Reattach children.
    for (Node *Child : N->Children) {
      Child->Parent = Parent;
      if (Parent)
        Parent->Children.push_back(Child);
      else
        Roots.push_back(Child);
    }
    // Unlink from parent / roots.
    auto &Siblings = Parent ? Parent->Children : Roots;
    Siblings.erase(std::remove(Siblings.begin(), Siblings.end(), N),
                   Siblings.end());
    // Destroy.
    Nodes.erase(std::remove_if(Nodes.begin(), Nodes.end(),
                               [&](const std::unique_ptr<Node> &P) {
                                 return P.get() == N;
                               }),
                Nodes.end());
  }

  const std::vector<Node *> &getRoots() const { return Roots; }

  /// The node holding \p Payload, or null.
  Node *findNode(const T *Payload) const {
    for (const auto &N : Nodes)
      if (N->Payload == Payload)
        return N.get();
    return nullptr;
  }

  size_t size() const { return Nodes.size(); }

  /// Visits nodes depth-first, children after parents (preorder).
  void visitPreorder(std::function<void(Node *)> Fn) const {
    std::function<void(Node *)> Rec = [&](Node *N) {
      Fn(N);
      // Copy: Fn may mutate the child list (e.g. via removeNode).
      auto Children = N->Children;
      for (Node *C : Children)
        Rec(C);
    };
    auto RootsCopy = Roots;
    for (Node *R : RootsCopy)
      Rec(R);
  }

  /// Visits nodes depth-first, parents after children (postorder) —
  /// innermost-first for loop forests, the order LICM hoists in.
  void visitPostorder(std::function<void(Node *)> Fn) const {
    std::function<void(Node *)> Rec = [&](Node *N) {
      auto Children = N->Children;
      for (Node *C : Children)
        Rec(C);
      Fn(N);
    };
    auto RootsCopy = Roots;
    for (Node *R : RootsCopy)
      Rec(R);
  }

private:
  std::vector<std::unique_ptr<Node>> Nodes;
  std::vector<Node *> Roots;
};

} // namespace noelle

#endif // NOELLE_FOREST_H
