//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's Environment (ENV) and Task (T) abstractions. An Environment
/// is the array of variables a task needs (live-ins and live-outs of a
/// code region); a Task is a code region packaged as a function executed
/// by a thread. Parallelizers marshal values through environment arrays
/// at runtime (Section 2.2).
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_ENVIRONMENT_H
#define NOELLE_ENVIRONMENT_H

#include "analysis/LoopInfo.h"
#include "noelle/PDG.h"

namespace noelle {

/// The live-in and live-out sets of a code region (here: a loop).
class Environment {
public:
  /// Computes the environment of loop \p L: live-ins are values defined
  /// outside and used inside; live-outs are instructions defined inside
  /// and used outside.
  Environment(nir::LoopStructure &L);

  const std::vector<Value *> &getLiveIns() const { return LiveIns; }
  const std::vector<Instruction *> &getLiveOuts() const { return LiveOuts; }

  /// Index of \p V in the live-in section of the environment array.
  int indexOfLiveIn(const Value *V) const;

  /// Index of \p I in the live-out section (offset by live-in count when
  /// laid out in one array).
  int indexOfLiveOut(const Instruction *I) const;

  /// Slots needed when live-ins and live-outs share one array.
  unsigned size() const {
    return static_cast<unsigned>(LiveIns.size() + LiveOuts.size());
  }

private:
  std::vector<Value *> LiveIns;
  std::vector<Instruction *> LiveOuts;
};

/// A code region executed sequentially by one thread. Parallelizers
/// create tasks from aSCCDAG node partitions; at runtime tasks are
/// submitted to the thread pool.
class Task {
public:
  Task(nir::Function *Body, unsigned ID) : Body(Body), ID(ID) {}

  /// The generated function with signature (ptr env, i64 taskID,
  /// i64 numTasks) -> void.
  nir::Function *getBody() const { return Body; }
  unsigned getID() const { return ID; }

private:
  nir::Function *Body;
  unsigned ID;
};

} // namespace noelle

#endif // NOELLE_ENVIRONMENT_H
