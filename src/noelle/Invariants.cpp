#include "noelle/Invariants.h"

#include "ir/Instructions.h"

using namespace noelle;
using nir::BranchInst;
using nir::Instruction;
using nir::PhiInst;

InvariantManager::InvariantManager(nir::LoopStructure &L, PDG &LoopDG)
    : L(L), LoopDG(LoopDG) {}

bool InvariantManager::isLoopInvariant(const Value *V) {
  const auto *I = nir::dyn_cast<Instruction>(V);
  if (!I)
    return true; // Constants, arguments, globals never vary.
  if (!L.contains(I))
    return true; // Defined before/after the loop.

  auto It = Memo.find(V);
  if (It != Memo.end())
    return It->second;

  std::set<const Value *> InStack;
  bool R = isInvariantRec(V, InStack);
  Memo[V] = R;
  return R;
}

bool InvariantManager::isInvariantRec(const Value *V,
                                      std::set<const Value *> &InStack) {
  const auto *I = nir::dyn_cast<Instruction>(V);
  if (!I || !L.contains(I))
    return true;

  auto It = Memo.find(V);
  if (It != Memo.end())
    return It->second;

  // Values that produce a new result per iteration by construction.
  // Header phis carry loop state; body phis select a value based on
  // control flow, so they are only invariant when every incoming value
  // is one and the same invariant value.
  if (const auto *Phi = nir::dyn_cast<PhiInst>(I)) {
    if (I->getParent() == L.getHeader()) {
      Memo[V] = false;
      return false;
    }
    const Value *Unique = nullptr;
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
      if (!Unique)
        Unique = Phi->getIncomingValue(K);
      else if (Unique != Phi->getIncomingValue(K)) {
        Memo[V] = false;
        return false;
      }
    }
  }
  // Terminators, stores (scalar or vector), and calls are not hoistable
  // values; treating them as variant keeps the definition aligned with
  // "can be moved to the preheader".
  if (I->isTerminator() || I->mayWriteToMemory() ||
      nir::isa<nir::CallInst>(I) || nir::isa<nir::AllocaInst>(I)) {
    Memo[V] = false;
    return false;
  }

  // Algorithm 2: a dependence cycle means "not invariant".
  if (InStack.count(V))
    return false;
  InStack.insert(V);

  bool Result = true;
  for (const auto *E : LoopDG.getInEdges(const_cast<Value *>(V))) {
    const Value *Dep = E->From;
    const auto *DepInst = nir::dyn_cast<Instruction>(Dep);
    if (!DepInst || !L.contains(DepInst))
      continue; // Dependence from outside the loop: fine.
    if (E->IsControl) {
      // Pure instructions can be speculated above the controlling
      // branch, so control dependences do not break invariance (we
      // already rejected side-effecting instructions above). This is
      // precisely where Algorithm 2 beats Algorithm 1's conservatism.
      continue;
    }
    if (!isInvariantRec(Dep, InStack)) {
      Result = false;
      break;
    }
  }

  InStack.erase(V);
  Memo[V] = Result;
  return Result;
}

std::vector<Instruction *> InvariantManager::getInvariants() {
  std::vector<Instruction *> Out;
  for (auto *BB : L.getBlocks())
    for (const auto &I : BB->getInstList())
      if (isLoopInvariant(I.get()))
        Out.push_back(I.get());
  return Out;
}
