#include "noelle/Architecture.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

using namespace noelle;

unsigned Architecture::hostLogicalCores() {
  static const unsigned N = std::max(1u, std::thread::hardware_concurrency());
  return N;
}

Architecture::Architecture(bool MeasureLatencies) {
  LogicalCores = hostLogicalCores();
  // Without a portable SMT query, assume 2-way SMT when core count is
  // even and greater than two (matching the evaluation platform's
  // 12-core / 24-thread Haswell), else 1:1.
  PhysicalCores =
      (LogicalCores > 2 && LogicalCores % 2 == 0) ? LogicalCores / 2
                                                  : LogicalCores;
  NUMANodes = 1;

  if (!MeasureLatencies)
    return;

  // Ping-pong latency between core 0 and each other core: two threads
  // alternate on an atomic flag; latency = round-trip time / 2.
  LatencyNs.assign(LogicalCores,
                   std::vector<double>(LogicalCores, 0.0));
  constexpr int Rounds = 20000;
  for (unsigned Other = 1; Other < std::min(LogicalCores, 8u); ++Other) {
    std::atomic<int> Flag{0};
    auto Start = std::chrono::steady_clock::now();
    std::thread Pong([&] {
      for (int I = 0; I < Rounds; ++I) {
        while (Flag.load(std::memory_order_acquire) != 1)
          ;
        Flag.store(0, std::memory_order_release);
      }
    });
    for (int I = 0; I < Rounds; ++I) {
      Flag.store(1, std::memory_order_release);
      while (Flag.load(std::memory_order_acquire) != 0)
        ;
    }
    Pong.join();
    auto End = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    End - Start)
                    .count() /
                (2.0 * Rounds);
    LatencyNs[0][Other] = LatencyNs[Other][0] = Ns;
  }
  // Fill unmeasured pairs with the max measured latency (conservative).
  double MaxNs = 0;
  for (auto &Row : LatencyNs)
    for (double V : Row)
      MaxNs = std::max(MaxNs, V);
  for (unsigned A = 0; A < LogicalCores; ++A)
    for (unsigned B = 0; B < LogicalCores; ++B)
      if (A != B && LatencyNs[A][B] == 0)
        LatencyNs[A][B] = MaxNs;
}

double Architecture::getCoreToCoreLatencyNs(unsigned A, unsigned B) const {
  if (LatencyNs.empty() || A >= LogicalCores || B >= LogicalCores)
    return 0;
  return LatencyNs[A][B];
}

std::string Architecture::str() const {
  std::ostringstream OS;
  OS << "logical_cores " << LogicalCores << "\n";
  OS << "physical_cores " << PhysicalCores << "\n";
  OS << "numa_nodes " << NUMANodes << "\n";
  if (!LatencyNs.empty()) {
    OS << "latency_ns";
    for (unsigned B = 0; B < LogicalCores; ++B)
      OS << " " << LatencyNs[0][B];
    OS << "\n";
  }
  return OS.str();
}

Architecture Architecture::fromString(const std::string &Text) {
  Architecture A(false);
  std::istringstream IS(Text);
  std::string Key;
  while (IS >> Key) {
    if (Key == "logical_cores")
      IS >> A.LogicalCores;
    else if (Key == "physical_cores")
      IS >> A.PhysicalCores;
    else if (Key == "numa_nodes")
      IS >> A.NUMANodes;
    else if (Key == "latency_ns") {
      A.LatencyNs.assign(A.LogicalCores,
                         std::vector<double>(A.LogicalCores, 0.0));
      for (unsigned B = 0; B < A.LogicalCores; ++B) {
        double V = 0;
        IS >> V;
        A.LatencyNs[0][B] = V;
        A.LatencyNs[B][0] = V;
      }
    }
  }
  return A;
}
