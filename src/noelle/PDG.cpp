#include "noelle/PDG.h"

#include "analysis/Dominators.h"
#include "ir/Instructions.h"

#include <algorithm>

using namespace noelle;
using nir::AliasResult;
using nir::AllocaInst;
using nir::BasicBlock;
using nir::BranchInst;
using nir::CallInst;
using nir::CastInst;
using nir::ConstantInt;
using nir::GEPInst;
using nir::GlobalVariable;
using nir::LoadInst;
using nir::PhiInst;
using nir::PostDominatorTree;
using nir::StoreInst;

namespace {

/// External functions that never touch program-visible memory (they
/// read their value arguments only, or allocate fresh storage).
bool isMemoryInertExternal(const Function *F) {
  static const char *Names[] = {
      "print_i64", "print_f64", "print_char", "malloc",   "free",
      "sqrt",      "fabs",      "exp",        "log",      "sin",
      "cos",       "pow",       "floor",      "clock_ns", "abort_if_false"};
  for (const char *N : Names)
    if (F->getName() == N)
      return true;
  return false;
}

bool mayAccessMemory(const Instruction *I) {
  if (nir::isa<LoadInst>(I) || nir::isa<StoreInst>(I))
    return true;
  if (const auto *C = nir::dyn_cast<CallInst>(I)) {
    if (C->getMetadata("noelle.pure") == "true")
      return false;
    const Function *Callee = C->getCalledFunction();
    if (Callee && Callee->isDeclaration() && isMemoryInertExternal(Callee))
      return false;
    return true;
  }
  return false;
}

} // namespace

PDGBuilder::PDGBuilder(Module &M, PDGBuildOptions Opts)
    : M(M), Opts(Opts) {
  std::string AAName = Opts.AliasAnalysisName;
  if (AAName == "noelle")
    AAName = "andersen";
  else if (AAName == "llvm")
    AAName = "basic";
  AA = nir::createAliasAnalysis(AAName, M);
}

PDGBuilder::~PDGBuilder() = default;

//===----------------------------------------------------------------------===//
// Mod/ref summaries (interprocedural, Andersen-powered)
//===----------------------------------------------------------------------===//

void PDGBuilder::buildModRefSummaries() {
  if (SummariesBuilt)
    return;
  SummariesBuilt = true;
  if (!Opts.UseModRefSummaries)
    return;
  SummaryAA = std::make_unique<nir::AndersenAliasAnalysis>(M);

  // Direct effects.
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    auto &Reads = ReadSet[F.get()];
    auto &Writes = WriteSet[F.get()];
    bool &Unknown = TouchesUnknown[F.get()];
    Unknown = false;
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        if (const auto *L = nir::dyn_cast<LoadInst>(I.get())) {
          const auto &Pts = SummaryAA->getPointsTo(L->getPointerOperand());
          if (Pts.empty())
            Unknown = true;
          Reads.insert(Pts.begin(), Pts.end());
        } else if (const auto *S = nir::dyn_cast<StoreInst>(I.get())) {
          const auto &Pts = SummaryAA->getPointsTo(S->getPointerOperand());
          if (Pts.empty())
            Unknown = true;
          Writes.insert(Pts.begin(), Pts.end());
        }
      }
  }

  // Transitive closure over calls.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.getFunctions()) {
      if (F->isDeclaration())
        continue;
      auto &Reads = ReadSet[F.get()];
      auto &Writes = WriteSet[F.get()];
      bool &Unknown = TouchesUnknown[F.get()];
      for (const auto &BB : F->getBlocks())
        for (const auto &I : BB->getInstList()) {
          const auto *C = nir::dyn_cast<CallInst>(I.get());
          if (!C)
            continue;
          std::vector<Function *> Callees;
          if (Function *Direct = C->getCalledFunction()) {
            Callees.push_back(Direct);
          } else {
            Callees = SummaryAA->getIndirectCallees(C);
            if (Callees.empty() && !Unknown) {
              Unknown = true;
              Changed = true;
            }
          }
          for (Function *Callee : Callees) {
            if (Callee->isDeclaration()) {
              if (!isMemoryInertExternal(Callee) && !Unknown) {
                Unknown = true;
                Changed = true;
              }
              continue;
            }
            for (const Value *O : ReadSet[Callee])
              if (Reads.insert(O).second)
                Changed = true;
            for (const Value *O : WriteSet[Callee])
              if (Writes.insert(O).second)
                Changed = true;
            if (TouchesUnknown[Callee] && !Unknown) {
              Unknown = true;
              Changed = true;
            }
          }
        }
    }
  }
}

bool PDGBuilder::callMayTouch(const CallInst *Call, const Value *Ptr) {
  if (Call->getMetadata("noelle.pure") == "true")
    return false;

  std::vector<Function *> Callees;
  if (Function *Direct = Call->getCalledFunction())
    Callees.push_back(Direct);

  if (!Opts.UseModRefSummaries) {
    // LLVM-like conservatism: any call may touch anything, except the
    // known memory-inert externals.
    if (Callees.size() == 1 && Callees[0]->isDeclaration())
      return !isMemoryInertExternal(Callees[0]);
    return true;
  }

  buildModRefSummaries();
  if (Callees.empty())
    Callees = SummaryAA->getIndirectCallees(Call);
  if (Callees.empty())
    return true;

  const auto &PtrObjs = SummaryAA->getPointsTo(Ptr);
  for (Function *Callee : Callees) {
    if (Callee->isDeclaration()) {
      if (!isMemoryInertExternal(Callee))
        return true;
      continue;
    }
    if (TouchesUnknown[Callee])
      return true;
    if (PtrObjs.empty())
      return true;
    for (const Value *O : PtrObjs)
      if (ReadSet[Callee].count(O) || WriteSet[Callee].count(O))
        return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Per-function dependences
//===----------------------------------------------------------------------===//

void PDGBuilder::buildFunctionDeps(Function &F, PDG &G, PDG::Stats &Stats) {
  // Register dependences from SSA def-use chains.
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      for (const Value *Op : I->operands()) {
        auto *OpI = nir::dyn_cast<Instruction>(const_cast<Value *>(Op));
        if (OpI && G.hasNode(OpI))
          G.addRegisterDep(OpI, I.get(), DataDepKind::RAW);
      }

  // Memory dependences among loads/stores/calls.
  std::vector<Instruction *> MemInsts;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (mayAccessMemory(I.get()))
        MemInsts.push_back(I.get());

  auto PtrOf = [](Instruction *I) -> const Value * {
    if (auto *L = nir::dyn_cast<LoadInst>(I))
      return L->getPointerOperand();
    if (auto *S = nir::dyn_cast<StoreInst>(I))
      return S->getPointerOperand();
    return nullptr;
  };

  for (size_t A = 0; A < MemInsts.size(); ++A) {
    for (size_t B = A; B < MemInsts.size(); ++B) {
      Instruction *IA = MemInsts[A];
      Instruction *IB = MemInsts[B];
      bool ALoad = nir::isa<LoadInst>(IA);
      bool BLoad = nir::isa<LoadInst>(IB);
      bool AStore = nir::isa<StoreInst>(IA);
      bool BStore = nir::isa<StoreInst>(IB);
      bool ACall = nir::isa<CallInst>(IA);
      bool BCall = nir::isa<CallInst>(IB);

      // Load-load pairs carry no dependence.
      if (ALoad && BLoad)
        continue;
      // A self-pair only matters for stores/calls (loop-carried WAW).
      if (A == B && ALoad)
        continue;

      if (ACall && BCall) {
        ++Stats.MemoryPairsQueried;
        // Call-call ordering matters unless summaries prove both
        // write-free over disjoint state; keep it simple and sound.
        bool Dep = true;
        if (Opts.UseModRefSummaries) {
          buildModRefSummaries();
          auto Effects = [&](CallInst *C, std::set<const Value *> &R,
                             std::set<const Value *> &W) -> bool {
            std::vector<Function *> Cs;
            if (Function *D = C->getCalledFunction())
              Cs.push_back(D);
            else
              Cs = SummaryAA->getIndirectCallees(C);
            if (Cs.empty())
              return false;
            for (Function *Callee : Cs) {
              if (Callee->isDeclaration()) {
                if (!isMemoryInertExternal(Callee))
                  return false;
                continue;
              }
              if (TouchesUnknown[Callee])
                return false;
              R.insert(ReadSet[Callee].begin(), ReadSet[Callee].end());
              W.insert(WriteSet[Callee].begin(), WriteSet[Callee].end());
            }
            return true;
          };
          std::set<const Value *> RA, WA, RB, WB;
          if (Effects(nir::cast<CallInst>(IA), RA, WA) &&
              Effects(nir::cast<CallInst>(IB), RB, WB)) {
            auto Intersects = [](const std::set<const Value *> &X,
                                 const std::set<const Value *> &Y) {
              for (const Value *V : X)
                if (Y.count(V))
                  return true;
              return false;
            };
            Dep = Intersects(WA, RB) || Intersects(WA, WB) ||
                  Intersects(RA, WB);
          }
        }
        if (!Dep) {
          ++Stats.MemoryPairsDisproved;
          continue;
        }
        G.addMemoryDep(IA, IB, DataDepKind::WAW, /*Must=*/false);
        if (A != B)
          G.addMemoryDep(IB, IA, DataDepKind::WAW, /*Must=*/false);
        continue;
      }

      if (ACall || BCall) {
        Instruction *Call = ACall ? IA : IB;
        Instruction *Mem = ACall ? IB : IA;
        const Value *Ptr = PtrOf(Mem);
        ++Stats.MemoryPairsQueried;
        if (!callMayTouch(nir::cast<CallInst>(Call), Ptr)) {
          ++Stats.MemoryPairsDisproved;
          continue;
        }
        bool MemIsStore = nir::isa<StoreInst>(Mem);
        // Call treated as a read+write of the location.
        G.addMemoryDep(Call, Mem, MemIsStore ? DataDepKind::WAW
                                             : DataDepKind::RAW,
                       /*Must=*/false);
        G.addMemoryDep(Mem, Call, MemIsStore ? DataDepKind::RAW
                                             : DataDepKind::WAR,
                       /*Must=*/false);
        continue;
      }

      // Plain load/store pairs.
      const Value *PA = PtrOf(IA);
      const Value *PB = PtrOf(IB);
      ++Stats.MemoryPairsQueried;
      AliasResult AR = AA->alias(PA, PB);
      if (AR == AliasResult::NoAlias) {
        ++Stats.MemoryPairsDisproved;
        continue;
      }
      bool Must = AR == AliasResult::MustAlias;
      if (AStore && BStore) {
        G.addMemoryDep(IA, IB, DataDepKind::WAW, Must);
        if (A != B)
          G.addMemoryDep(IB, IA, DataDepKind::WAW, Must);
      } else if (AStore && BLoad) {
        G.addMemoryDep(IA, IB, DataDepKind::RAW, Must);
        G.addMemoryDep(IB, IA, DataDepKind::WAR, Must);
      } else if (ALoad && BStore) {
        G.addMemoryDep(IA, IB, DataDepKind::WAR, Must);
        G.addMemoryDep(IB, IA, DataDepKind::RAW, Must);
      }
    }
  }

  buildControlDeps(F, G);
}

void PDGBuilder::buildControlDeps(Function &F, PDG &G) {
  PostDominatorTree PDT(F);
  for (const auto &BB : F.getBlocks()) {
    auto *Br = nir::dyn_cast_or_null<BranchInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    // Blocks control-dependent on this branch: for each successor S that
    // does not post-dominate BB, walk S's post-dominator chain up to
    // (exclusive) ipdom(BB).
    BasicBlock *Stop = PDT.getIPDom(BB.get());
    for (unsigned SI = 0; SI < Br->getNumSuccessors(); ++SI) {
      BasicBlock *S = Br->getSuccessor(SI);
      if (PDT.postDominates(S, BB.get()) && S != BB.get())
        continue;
      BasicBlock *Cur = S;
      std::set<BasicBlock *> Seen;
      while (Cur && Cur != Stop && Seen.insert(Cur).second) {
        for (const auto &I : Cur->getInstList())
          if (G.hasNode(I.get()))
            G.addControlDep(Br, I.get());
        Cur = PDT.getIPDom(Cur);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Whole-program / function / loop graphs
//===----------------------------------------------------------------------===//

PDG &PDGBuilder::getPDG() {
  if (WholePDG)
    return *WholePDG;
  WholePDG = std::make_unique<PDG>();
  PDG &G = *WholePDG;
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        G.addNode(I.get(), /*Internal=*/true);
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    buildFunctionDeps(*F, G, G.getStatsMutable());
  }
  return G;
}

std::unique_ptr<PDG> PDGBuilder::getFunctionDG(Function &F) {
  auto G = std::make_unique<PDG>();
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      G->addNode(I.get(), /*Internal=*/true);
  // External nodes: arguments and globals referenced by the function.
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      for (Value *Op : I->operands()) {
        if (nir::isa<nir::Argument>(Op) || nir::isa<GlobalVariable>(Op)) {
          G->addNode(Op, /*Internal=*/false);
          G->addRegisterDep(Op, I.get(), DataDepKind::RAW);
        }
      }
  buildFunctionDeps(F, *G, G->getStatsMutable());
  return G;
}

std::unique_ptr<PDG> PDGBuilder::getLoopDG(LoopStructure &L) {
  Function &F = *L.getFunction();

  // Build the function-level dependences over a graph whose internal
  // nodes are the loop's instructions; everything else in the function
  // that interacts with the loop becomes external.
  auto G = std::make_unique<PDG>();
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      G->addNode(I.get(), L.contains(I.get()));
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      for (Value *Op : I->operands())
        if (nir::isa<nir::Argument>(Op) || nir::isa<GlobalVariable>(Op)) {
          G->addNode(Op, /*Internal=*/false);
          if (L.contains(I.get()))
            G->addRegisterDep(Op, I.get(), DataDepKind::RAW);
        }
  buildFunctionDeps(F, *G, G->getStatsMutable());
  refineLoopCarried(L, *G);
  return G;
}

//===----------------------------------------------------------------------===//
// Loop-carried refinement
//===----------------------------------------------------------------------===//

namespace {

/// True if \p V is loop-invariant w.r.t. \p L by a quick structural test
/// (constants, values defined outside the loop).
bool quickInvariant(const Value *V, const LoopStructure &L) {
  const auto *I = nir::dyn_cast<Instruction>(V);
  if (!I)
    return true; // constants, arguments, globals
  return !L.contains(I);
}

/// True if \p V is a strictly-monotonic affine induction expression of
/// loop \p L: a header phi stepped by a nonzero loop-invariant constant,
/// or such a phi plus/minus a loop-invariant value.
bool isMonotonicAffineIV(const Value *V, const LoopStructure &L) {
  // Peel constant-offset adjustments.
  const Value *Cur = V;
  for (unsigned Peel = 0; Peel < 4; ++Peel) {
    if (const auto *B = nir::dyn_cast<nir::BinaryInst>(Cur)) {
      using Op = nir::BinaryInst::Op;
      if ((B->getOp() == Op::Add || B->getOp() == Op::Sub) &&
          quickInvariant(B->getRHS(), L)) {
        Cur = B->getLHS();
        continue;
      }
      if (B->getOp() == Op::Add && quickInvariant(B->getLHS(), L)) {
        Cur = B->getRHS();
        continue;
      }
    }
    break;
  }

  const auto *Phi = nir::dyn_cast<PhiInst>(Cur);
  if (!Phi || Phi->getParent() != L.getHeader())
    return false;

  // One incoming from inside must be phi +/- nonzero constant.
  for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
    const BasicBlock *In = Phi->getIncomingBlock(K);
    if (!L.contains(In))
      continue;
    const auto *Step =
        nir::dyn_cast<nir::BinaryInst>(Phi->getIncomingValue(K));
    if (!Step)
      return false;
    using Op = nir::BinaryInst::Op;
    if (Step->getOp() != Op::Add && Step->getOp() != Op::Sub)
      return false;
    const Value *Base = Step->getLHS();
    const Value *Amount = Step->getRHS();
    if (Step->getOp() == Op::Add && Base != Phi)
      std::swap(Base, Amount);
    if (Base != Phi)
      return false;
    const auto *C = nir::dyn_cast<ConstantInt>(Amount);
    if (!C || C->isZero())
      return false;
  }
  return true;
}

/// Address characterization for the same-iteration test: base pointer +
/// index value + scale.
struct AddrKey {
  const Value *Base = nullptr;
  const Value *Index = nullptr;
  uint64_t Scale = 0;
  bool Valid = false;
};

AddrKey addrKeyOf(const Instruction *I) {
  const Value *Ptr = nullptr;
  if (const auto *L = nir::dyn_cast<LoadInst>(I))
    Ptr = L->getPointerOperand();
  else if (const auto *S = nir::dyn_cast<StoreInst>(I))
    Ptr = S->getPointerOperand();
  if (!Ptr)
    return {};
  AddrKey K;
  if (const auto *G = nir::dyn_cast<GEPInst>(Ptr)) {
    K.Base = G->getBase();
    K.Index = G->getIndex();
    K.Scale = G->getScale();
    K.Valid = true;
    return K;
  }
  K.Base = Ptr;
  K.Index = nullptr;
  K.Valid = true;
  return K;
}

} // namespace

void PDGBuilder::refineLoopCarried(LoopStructure &L, PDG &G) {
  for (auto *E : G.getEdges()) {
    auto *From = nir::dyn_cast<Instruction>(E->From);
    auto *To = nir::dyn_cast<Instruction>(E->To);
    if (!From || !To || !L.contains(From) || !L.contains(To))
      continue;

    if (E->IsControl)
      continue;

    if (!E->IsMemory) {
      // A register dependence is loop-carried iff it feeds a header phi
      // through a latch edge (the value crosses the back edge).
      auto *Phi = nir::dyn_cast<PhiInst>(To);
      if (Phi && Phi->getParent() == L.getHeader()) {
        for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
          if (Phi->getIncomingValue(K) == From &&
              L.contains(Phi->getIncomingBlock(K))) {
            E->IsLoopCarried = true;
            E->Distance = 1;
          }
      }
      continue;
    }

    // Memory dependences: conservatively loop-carried, unless both
    // accesses hit the same address every iteration through a
    // strictly-monotonic affine index (then each iteration touches a
    // distinct location, so the dependence cannot cross iterations).
    E->IsLoopCarried = true;

    // Self-dependences of a store through an injective IV address are
    // not real: each iteration writes a different location.
    AddrKey KA = addrKeyOf(From);
    AddrKey KB = addrKeyOf(To);
    if (KA.Valid && KB.Valid && KA.Base == KB.Base &&
        KA.Index == KB.Index && KA.Scale == KB.Scale) {
      if (KA.Index && isMonotonicAffineIV(KA.Index, L)) {
        E->IsLoopCarried = false;
        E->Distance = 0;
      } else if (!KA.Index && From == To) {
        // Same scalar location every iteration: a self WAW on a fixed
        // address is genuinely loop-carried; keep it.
      }
    }
  }
}
