#include "noelle/PDG.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/IDs.h"
#include "ir/Instructions.h"
#include "runtime/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

using namespace noelle;
namespace telemetry = noelle::telemetry;
using nir::AliasResult;
using nir::AllocaInst;
using nir::BasicBlock;
using nir::BranchInst;
using nir::CallInst;
using nir::CastInst;
using nir::ConstantInt;
using nir::GEPInst;
using nir::GlobalVariable;
using nir::LoadInst;
using nir::PhiInst;
using nir::PostDominatorTree;
using nir::StoreInst;

namespace {

/// External functions that never touch program-visible memory (they
/// read their value arguments only, or allocate fresh storage).
bool isMemoryInertExternal(const Function *F) {
  static const char *Names[] = {
      "print_i64", "print_f64", "print_char", "malloc",   "free",
      "sqrt",      "fabs",      "exp",        "log",      "sin",
      "cos",       "pow",       "floor",      "clock_ns", "abort_if_false"};
  for (const char *N : Names)
    if (F->getName() == N)
      return true;
  return false;
}

bool mayAccessMemory(const Instruction *I) {
  if (nir::isa<LoadInst>(I) || nir::isa<StoreInst>(I) ||
      nir::isa<nir::VLoadInst>(I) || nir::isa<nir::VStoreInst>(I))
    return true;
  if (const auto *C = nir::dyn_cast<CallInst>(I)) {
    if (C->getMetadata("noelle.pure") == "true")
      return false;
    const Function *Callee = C->getCalledFunction();
    if (Callee && Callee->isDeclaration() && isMemoryInertExternal(Callee))
      return false;
    return true;
  }
  return false;
}

} // namespace

PDGBuilder::PDGBuilder(Module &M, PDGBuildOptions Opts)
    : M(M), Opts(Opts) {}

PDGBuilder::~PDGBuilder() = default;

void PDGBuilder::ensureAA() {
  if (AA)
    return;
  std::string AAName = Opts.AliasAnalysisName;
  if (AAName == "noelle")
    AAName = "andersen";
  else if (AAName == "llvm")
    AAName = "basic";
  AA = nir::createAliasAnalysis(AAName, M);
}

void PDGBuilder::invalidate() {
  WholePDG.reset();
  LoadedFromEmbedded = false;
  AA.reset();
  SummaryAA.reset();
  ReadSet.clear();
  WriteSet.clear();
  TouchesUnknown.clear();
  SummariesBuilt = false;
}

//===----------------------------------------------------------------------===//
// Mod/ref summaries (interprocedural, Andersen-powered)
//===----------------------------------------------------------------------===//

void PDGBuilder::buildModRefSummaries() {
  if (SummariesBuilt)
    return;
  SummariesBuilt = true;
  if (!Opts.UseModRefSummaries)
    return;
  SummaryAA = std::make_unique<nir::AndersenAliasAnalysis>(M);

  // Direct effects.
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    auto &Reads = ReadSet[F.get()];
    auto &Writes = WriteSet[F.get()];
    bool &Unknown = TouchesUnknown[F.get()];
    Unknown = false;
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        nir::MemAccess Acc;
        if (nir::memoryAccessOf(I.get(), Acc)) {
          const auto &Pts = SummaryAA->getPointsTo(Acc.Ptr);
          if (Pts.empty())
            Unknown = true;
          auto &Dst = Acc.IsWrite ? Writes : Reads;
          Dst.insert(Pts.begin(), Pts.end());
        }
      }
  }

  // Transitive closure over calls.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.getFunctions()) {
      if (F->isDeclaration())
        continue;
      auto &Reads = ReadSet[F.get()];
      auto &Writes = WriteSet[F.get()];
      bool &Unknown = TouchesUnknown[F.get()];
      for (const auto &BB : F->getBlocks())
        for (const auto &I : BB->getInstList()) {
          const auto *C = nir::dyn_cast<CallInst>(I.get());
          if (!C)
            continue;
          std::vector<Function *> Callees;
          if (Function *Direct = C->getCalledFunction()) {
            Callees.push_back(Direct);
          } else {
            Callees = SummaryAA->getIndirectCallees(C);
            if (Callees.empty() && !Unknown) {
              Unknown = true;
              Changed = true;
            }
          }
          for (Function *Callee : Callees) {
            if (Callee->isDeclaration()) {
              if (!isMemoryInertExternal(Callee) && !Unknown) {
                Unknown = true;
                Changed = true;
              }
              continue;
            }
            for (const Value *O : ReadSet[Callee])
              if (Reads.insert(O).second)
                Changed = true;
            for (const Value *O : WriteSet[Callee])
              if (Writes.insert(O).second)
                Changed = true;
            if (TouchesUnknown[Callee] && !Unknown) {
              Unknown = true;
              Changed = true;
            }
          }
        }
    }
  }
}

// Const lookups used from the (possibly concurrent) dependence jobs: the
// summary maps are frozen once buildModRefSummaries returns, and these
// never insert, so concurrent readers need no locking.
const std::set<const Value *> &
PDGBuilder::readSetOf(const Function *F) const {
  auto It = ReadSet.find(F);
  return It == ReadSet.end() ? EmptyValueSet : It->second;
}

const std::set<const Value *> &
PDGBuilder::writeSetOf(const Function *F) const {
  auto It = WriteSet.find(F);
  return It == WriteSet.end() ? EmptyValueSet : It->second;
}

bool PDGBuilder::touchesUnknown(const Function *F) const {
  auto It = TouchesUnknown.find(F);
  return It == TouchesUnknown.end() ? true : It->second;
}

bool PDGBuilder::callMayTouch(const CallInst *Call, const Value *Ptr) {
  if (Call->getMetadata("noelle.pure") == "true")
    return false;

  std::vector<Function *> Callees;
  if (Function *Direct = Call->getCalledFunction())
    Callees.push_back(Direct);

  if (!Opts.UseModRefSummaries) {
    // LLVM-like conservatism: any call may touch anything, except the
    // known memory-inert externals.
    if (Callees.size() == 1 && Callees[0]->isDeclaration())
      return !isMemoryInertExternal(Callees[0]);
    return true;
  }

  buildModRefSummaries();
  if (Callees.empty())
    Callees = SummaryAA->getIndirectCallees(Call);
  if (Callees.empty())
    return true;

  const auto &PtrObjs = SummaryAA->getPointsTo(Ptr);
  for (Function *Callee : Callees) {
    if (Callee->isDeclaration()) {
      if (!isMemoryInertExternal(Callee))
        return true;
      continue;
    }
    if (touchesUnknown(Callee))
      return true;
    if (PtrObjs.empty())
      return true;
    for (const Value *O : PtrObjs)
      if (readSetOf(Callee).count(O) || writeSetOf(Callee).count(O))
        return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Per-function dependences
//===----------------------------------------------------------------------===//

void PDGBuilder::buildFunctionDeps(Function &F, PDG &G, PDG::Stats &Stats) {
  // Register dependences from SSA def-use chains.
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      for (const Value *Op : I->operands()) {
        auto *OpI = nir::dyn_cast<Instruction>(const_cast<Value *>(Op));
        if (OpI && G.hasNode(OpI))
          G.addRegisterDep(OpI, I.get(), DataDepKind::RAW);
      }

  // Memory dependences among loads/stores/calls.
  std::vector<Instruction *> MemInsts;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (mayAccessMemory(I.get()))
        MemInsts.push_back(I.get());

  for (size_t A = 0; A < MemInsts.size(); ++A) {
    for (size_t B = A; B < MemInsts.size(); ++B) {
      Instruction *IA = MemInsts[A];
      Instruction *IB = MemInsts[B];
      nir::MemAccess MA, MB;
      bool AMem = nir::memoryAccessOf(IA, MA);
      bool BMem = nir::memoryAccessOf(IB, MB);
      bool ALoad = AMem && !MA.IsWrite;
      bool BLoad = BMem && !MB.IsWrite;
      bool AStore = AMem && MA.IsWrite;
      bool BStore = BMem && MB.IsWrite;
      bool ACall = nir::isa<CallInst>(IA);
      bool BCall = nir::isa<CallInst>(IB);

      // Load-load pairs carry no dependence.
      if (ALoad && BLoad)
        continue;
      // A self-pair only matters for stores/calls (loop-carried WAW).
      if (A == B && ALoad)
        continue;

      if (ACall && BCall) {
        ++Stats.MemoryPairsQueried;
        // Call-call ordering matters unless summaries prove both
        // write-free over disjoint state; keep it simple and sound.
        bool Dep = true;
        if (Opts.UseModRefSummaries) {
          buildModRefSummaries();
          auto Effects = [&](CallInst *C, std::set<const Value *> &R,
                             std::set<const Value *> &W) -> bool {
            std::vector<Function *> Cs;
            if (Function *D = C->getCalledFunction())
              Cs.push_back(D);
            else
              Cs = SummaryAA->getIndirectCallees(C);
            if (Cs.empty())
              return false;
            for (Function *Callee : Cs) {
              if (Callee->isDeclaration()) {
                if (!isMemoryInertExternal(Callee))
                  return false;
                continue;
              }
              if (touchesUnknown(Callee))
                return false;
              const auto &CR = readSetOf(Callee);
              const auto &CW = writeSetOf(Callee);
              R.insert(CR.begin(), CR.end());
              W.insert(CW.begin(), CW.end());
            }
            return true;
          };
          std::set<const Value *> RA, WA, RB, WB;
          if (Effects(nir::cast<CallInst>(IA), RA, WA) &&
              Effects(nir::cast<CallInst>(IB), RB, WB)) {
            auto Intersects = [](const std::set<const Value *> &X,
                                 const std::set<const Value *> &Y) {
              for (const Value *V : X)
                if (Y.count(V))
                  return true;
              return false;
            };
            Dep = Intersects(WA, RB) || Intersects(WA, WB) ||
                  Intersects(RA, WB);
          }
        }
        if (!Dep) {
          ++Stats.MemoryPairsDisproved;
          continue;
        }
        G.addMemoryDep(IA, IB, DataDepKind::WAW, /*Must=*/false);
        if (A != B)
          G.addMemoryDep(IB, IA, DataDepKind::WAW, /*Must=*/false);
        continue;
      }

      if (ACall || BCall) {
        Instruction *Call = ACall ? IA : IB;
        Instruction *Mem = ACall ? IB : IA;
        const Value *Ptr = ACall ? MB.Ptr : MA.Ptr;
        ++Stats.MemoryPairsQueried;
        if (!callMayTouch(nir::cast<CallInst>(Call), Ptr)) {
          ++Stats.MemoryPairsDisproved;
          continue;
        }
        bool MemIsStore = ACall ? MB.IsWrite : MA.IsWrite;
        // Call treated as a read+write of the location.
        G.addMemoryDep(Call, Mem, MemIsStore ? DataDepKind::WAW
                                             : DataDepKind::RAW,
                       /*Must=*/false);
        G.addMemoryDep(Mem, Call, MemIsStore ? DataDepKind::RAW
                                             : DataDepKind::WAR,
                       /*Must=*/false);
        continue;
      }

      // Plain load/store pairs (scalar or vector), disambiguated with
      // their byte extents so superword accesses stay sound.
      ++Stats.MemoryPairsQueried;
      AliasResult AR = AA->alias(MA.Ptr, nir::accessGranule(MA.Size),
                                 MB.Ptr, nir::accessGranule(MB.Size));
      if (AR == AliasResult::NoAlias) {
        ++Stats.MemoryPairsDisproved;
        continue;
      }
      bool Must = AR == AliasResult::MustAlias;
      if (AStore && BStore) {
        G.addMemoryDep(IA, IB, DataDepKind::WAW, Must);
        if (A != B)
          G.addMemoryDep(IB, IA, DataDepKind::WAW, Must);
      } else if (AStore && BLoad) {
        G.addMemoryDep(IA, IB, DataDepKind::RAW, Must);
        G.addMemoryDep(IB, IA, DataDepKind::WAR, Must);
      } else if (ALoad && BStore) {
        G.addMemoryDep(IA, IB, DataDepKind::WAR, Must);
        G.addMemoryDep(IB, IA, DataDepKind::RAW, Must);
      }
    }
  }

  buildControlDeps(F, G);
}

void PDGBuilder::buildControlDeps(Function &F, PDG &G) {
  PostDominatorTree PDT(F);
  for (const auto &BB : F.getBlocks()) {
    auto *Br = nir::dyn_cast_or_null<BranchInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    // Blocks control-dependent on this branch: for each successor S that
    // does not post-dominate BB, walk S's post-dominator chain up to
    // (exclusive) ipdom(BB).
    BasicBlock *Stop = PDT.getIPDom(BB.get());
    for (unsigned SI = 0; SI < Br->getNumSuccessors(); ++SI) {
      BasicBlock *S = Br->getSuccessor(SI);
      if (PDT.postDominates(S, BB.get()) && S != BB.get())
        continue;
      BasicBlock *Cur = S;
      std::set<BasicBlock *> Seen;
      while (Cur && Cur != Stop && Seen.insert(Cur).second) {
        for (const auto &I : Cur->getInstList())
          if (G.hasNode(I.get()))
            G.addControlDep(Br, I.get());
        Cur = PDT.getIPDom(Cur);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Whole-program / function / loop graphs
//===----------------------------------------------------------------------===//

void PDGBuilder::buildWholeSerial(PDG &G) {
  ensureAA();
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    const uint64_t T0 = telemetry::metricsEnabled() ? telemetry::nowNs() : 0;
    buildFunctionDeps(*F, G, G.getStatsMutable());
    if (T0) {
      const uint64_t T1 = telemetry::nowNs();
      telemetry::count(telemetry::Counter::PDGFunctionsBuilt);
      telemetry::record(telemetry::Hist::PDGFnBuildNs, T1 - T0);
      telemetry::traceSpan("pdg.build:" + F->getName(), T0, T1);
    }
  }
}

void PDGBuilder::buildWholeParallel(PDG &G) {
  // Shared analyses first, serially: the Andersen stack and the mod/ref
  // summaries are read-only once built, so the per-function jobs below
  // query them without locks.
  ensureAA();
  if (Opts.UseModRefSummaries)
    buildModRefSummaries();

  std::vector<Function *> Defined;
  for (const auto &F : M.getFunctions())
    if (!F->isDeclaration())
      Defined.push_back(F.get());

  // One job per defined function, each building its own subgraph. No
  // dependence ever crosses a function boundary (SSA operands, memory
  // pairs, and control dependences are all intra-function), so the
  // subgraphs partition the whole-program edge set.
  std::vector<std::unique_ptr<PDG>> Subs(Defined.size());
  std::vector<nir::ThreadPool::Job> Jobs;
  Jobs.reserve(Defined.size());
  for (size_t I = 0; I < Defined.size(); ++I)
    Jobs.push_back([this, &Subs, &Defined, I] {
      Function &F = *Defined[I];
      const uint64_t T0 =
          telemetry::metricsEnabled() ? telemetry::nowNs() : 0;
      auto Sub = std::make_unique<PDG>();
      for (const auto &BB : F.getBlocks())
        for (const auto &Inst : BB->getInstList())
          Sub->addNode(Inst.get(), /*Internal=*/true);
      buildFunctionDeps(F, *Sub, Sub->getStatsMutable());
      Subs[I] = std::move(Sub);
      if (T0) {
        const uint64_t T1 = telemetry::nowNs();
        telemetry::count(telemetry::Counter::PDGFunctionsBuilt);
        telemetry::record(telemetry::Hist::PDGFnBuildNs, T1 - T0);
        telemetry::traceSpan("pdg.build:" + F.getName(), T0, T1);
      }
    });
  nir::analysisThreadPool().runIndependent(std::move(Jobs),
                                           Opts.Parallelism);

  // Deterministic merge: module function order (== ascending function
  // IDs), each subgraph's edges in their local insertion order. This
  // reproduces the serial build's edge sequence exactly.
  for (size_t I = 0; I < Subs.size(); ++I) {
    PDG &Sub = *Subs[I];
    // Endpoints are instructions of a defined function, all registered
    // in G before the build started — skip the per-edge membership
    // check.
    for (const auto *E : Sub.getEdges())
      G.addEdgeTrusted(*E);
    G.getStatsMutable().MemoryPairsQueried +=
        Sub.getStats().MemoryPairsQueried;
    G.getStatsMutable().MemoryPairsDisproved +=
        Sub.getStats().MemoryPairsDisproved;
  }
}

PDG &PDGBuilder::getPDG() {
  if (WholePDG)
    return *WholePDG;
  if (Opts.UseEmbedded) {
    if (auto Cached = PDG::loadEmbedded(M)) {
      telemetry::count(telemetry::Counter::PDGEmbeddedHit);
      WholePDG = std::move(Cached);
      LoadedFromEmbedded = true;
      return *WholePDG;
    }
    telemetry::count(telemetry::Counter::PDGEmbeddedMiss);
  }
  LoadedFromEmbedded = false;
  WholePDG = std::make_unique<PDG>();
  PDG &G = *WholePDG;
  std::vector<Value *> AllInsts;
  AllInsts.reserve(M.getNumInstructions());
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        AllInsts.push_back(I.get());
  G.bulkLoad(AllInsts, {}, {});

  unsigned Defined = 0;
  for (const auto &F : M.getFunctions())
    if (!F->isDeclaration())
      ++Defined;
  if (Opts.ParallelBuild && Defined > 1)
    buildWholeParallel(G);
  else
    buildWholeSerial(G);
  return G;
}

std::unique_ptr<PDG> PDGBuilder::getFunctionDG(Function &F) {
  ensureAA();
  auto G = std::make_unique<PDG>();
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      G->addNode(I.get(), /*Internal=*/true);
  // External nodes: arguments and globals referenced by the function.
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      for (Value *Op : I->operands()) {
        if (nir::isa<nir::Argument>(Op) || nir::isa<GlobalVariable>(Op)) {
          G->addNode(Op, /*Internal=*/false);
          G->addRegisterDep(Op, I.get(), DataDepKind::RAW);
        }
      }
  buildFunctionDeps(F, *G, G->getStatsMutable());
  return G;
}

std::unique_ptr<PDG> PDGBuilder::getLoopDG(LoopStructure &L) {
  ensureAA();
  Function &F = *L.getFunction();

  // Build the function-level dependences over a graph whose internal
  // nodes are the loop's instructions; everything else in the function
  // that interacts with the loop becomes external.
  auto G = std::make_unique<PDG>();
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      G->addNode(I.get(), L.contains(I.get()));
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      for (Value *Op : I->operands())
        if (nir::isa<nir::Argument>(Op) || nir::isa<GlobalVariable>(Op)) {
          G->addNode(Op, /*Internal=*/false);
          if (L.contains(I.get()))
            G->addRegisterDep(Op, I.get(), DataDepKind::RAW);
        }
  buildFunctionDeps(F, *G, G->getStatsMutable());
  refineLoopCarried(L, *G);
  return G;
}

//===----------------------------------------------------------------------===//
// Embedding: the PDG as IR metadata
//===----------------------------------------------------------------------===//

// Edge wire format (module-level metadata, PDGEmbedEdgesKey):
//   <fromID>:<toID>:<bits>[:<distance>] ';' ...
// where bits packs the edge attributes: bit0 control, bit1 memory,
// bit2 loop-carried, bit3 must, bits 4-5 the DataDepKind. The distance
// field is present only when known (!= -1). IDs are the deterministic
// instruction IDs of src/ir/IDs.*, reassigned at embed time; the module
// body's content hash (PDGEmbedHashKey) keys the whole cache.

void PDG::embed(Module &M) const {
  nir::assignDeterministicIDs(M);

  // Instruction -> ID map (fresh IDs, so read them back once).
  std::map<const Value *, uint64_t> IDOf;
  uint64_t NextID = 0;
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        IDOf[I.get()] = NextID++;

  std::ostringstream OS;
  bool First = true;
  for (const auto *E : getEdges()) {
    auto FromIt = IDOf.find(E->From);
    auto ToIt = IDOf.find(E->To);
    assert(FromIt != IDOf.end() && ToIt != IDOf.end() &&
           "embed requires a whole-program PDG over this module's "
           "instructions");
    unsigned Bits = (E->IsControl ? 1u : 0u) | (E->IsMemory ? 2u : 0u) |
                    (E->IsLoopCarried ? 4u : 0u) | (E->IsMust ? 8u : 0u) |
                    (static_cast<unsigned>(E->Kind) << 4);
    if (!First)
      OS << ';';
    First = false;
    OS << FromIt->second << ':' << ToIt->second << ':' << Bits;
    if (E->Distance != -1)
      OS << ':' << E->Distance;
  }

  M.setModuleMetadata(PDGEmbedKey, "1");
  M.setModuleMetadata(PDGEmbedEdgesKey, OS.str());
  M.setModuleMetadata(PDGEmbedStatsKey,
                      std::to_string(TheStats.MemoryPairsQueried) + "," +
                          std::to_string(TheStats.MemoryPairsDisproved));
  // Hash last: it must digest the module *with* the IDs just assigned,
  // and module-level metadata is excluded from the digest, so the embed
  // itself cannot invalidate the hash it records.
  M.setModuleMetadata(PDGEmbedHashKey,
                      std::to_string(M.getContentHash()));
}

bool PDG::hasEmbedded(const Module &M) {
  return M.hasModuleMetadata(PDGEmbedKey);
}

void PDG::clearEmbedded(Module &M) {
  M.removeModuleMetadata(PDGEmbedKey);
  M.removeModuleMetadata(PDGEmbedHashKey);
  M.removeModuleMetadata(PDGEmbedEdgesKey);
  M.removeModuleMetadata(PDGEmbedStatsKey);
}

namespace {

/// Unsigned decimal parse without strtoull's locale machinery; the wire
/// format is machine-written, so anything non-numeric is corruption.
inline bool parseUInt(const char *&P, const char *End, uint64_t &Out) {
  const char *Start = P;
  uint64_t V = 0;
  while (P < End && *P >= '0' && *P <= '9')
    V = V * 10 + static_cast<uint64_t>(*P++ - '0');
  Out = V;
  return P != Start;
}

} // namespace

std::unique_ptr<PDG> PDG::loadEmbedded(Module &M) {
  if (!hasEmbedded(M))
    return nullptr;

  // Verify the IR is the one the graph was computed for.
  std::string HashStr = M.getModuleMetadata(PDGEmbedHashKey);
  if (HashStr.empty() ||
      std::strtoull(HashStr.c_str(), nullptr, 10) != M.getContentHash())
    return nullptr;

  // Edge endpoints are positional instruction indices — the order
  // embed() walked, which the hash match just proved unchanged. No
  // metadata lookups needed to resolve them.
  std::vector<Value *> ByIndex;
  ByIndex.reserve(M.getNumInstructions());
  for (const auto &F : M.getFunctions())
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList())
        ByIndex.push_back(I.get());

  // Decode every edge first, then hand nodes and edges to the graph in
  // one O(N + E) bulk load.
  std::vector<DependenceEdge<Value>> Decoded;
  std::vector<std::pair<uint32_t, uint32_t>> Endpoints;
  const std::string Payload = M.getModuleMetadata(PDGEmbedEdgesKey);
  const char *P = Payload.c_str();
  const char *End = P + Payload.size();
  while (P < End) {
    uint64_t FromID, ToID, Bits;
    if (!parseUInt(P, End, FromID) || P >= End || *P++ != ':')
      return nullptr;
    if (!parseUInt(P, End, ToID) || P >= End || *P++ != ':')
      return nullptr;
    if (!parseUInt(P, End, Bits))
      return nullptr;
    int64_t Distance = -1;
    if (P < End && *P == ':') {
      ++P;
      uint64_t D;
      if (!parseUInt(P, End, D))
        return nullptr;
      Distance = static_cast<int64_t>(D);
    }
    if (P < End && *P++ != ';')
      return nullptr;

    if (FromID >= ByIndex.size() || ToID >= ByIndex.size())
      return nullptr; // Dangling ID: the module changed under the cache.
    DependenceEdge<Value> E;
    E.From = ByIndex[FromID];
    E.To = ByIndex[ToID];
    E.IsControl = Bits & 1;
    E.IsMemory = Bits & 2;
    E.IsLoopCarried = Bits & 4;
    E.IsMust = Bits & 8;
    E.Kind = static_cast<DataDepKind>((Bits >> 4) & 3);
    E.Distance = Distance;
    Decoded.push_back(E);
    Endpoints.emplace_back(static_cast<uint32_t>(FromID),
                           static_cast<uint32_t>(ToID));
  }

  auto G = std::make_unique<PDG>();
  G->bulkLoad(ByIndex, std::move(Decoded), Endpoints);

  std::string Stats = M.getModuleMetadata(PDGEmbedStatsKey);
  if (!Stats.empty()) {
    char *Next = nullptr;
    G->getStatsMutable().MemoryPairsQueried =
        std::strtoull(Stats.c_str(), &Next, 10);
    if (Next && *Next == ',')
      G->getStatsMutable().MemoryPairsDisproved =
          std::strtoull(Next + 1, nullptr, 10);
  }
  return G;
}

//===----------------------------------------------------------------------===//
// Loop-carried refinement
//===----------------------------------------------------------------------===//

namespace {

/// True if \p V is loop-invariant w.r.t. \p L by a quick structural test
/// (constants, values defined outside the loop).
bool quickInvariant(const Value *V, const LoopStructure &L) {
  const auto *I = nir::dyn_cast<Instruction>(V);
  if (!I)
    return true; // constants, arguments, globals
  return !L.contains(I);
}

/// True if \p V is a strictly-monotonic affine induction expression of
/// loop \p L: a header phi stepped by a nonzero loop-invariant constant,
/// or such a phi plus/minus a loop-invariant value. When \p MinAbsStep is
/// given, it receives the smallest |constant step| across back edges.
bool isMonotonicAffineIV(const Value *V, const LoopStructure &L,
                         uint64_t *MinAbsStep = nullptr) {
  // Peel constant-offset adjustments.
  const Value *Cur = V;
  for (unsigned Peel = 0; Peel < 4; ++Peel) {
    if (const auto *B = nir::dyn_cast<nir::BinaryInst>(Cur)) {
      using Op = nir::BinaryInst::Op;
      if ((B->getOp() == Op::Add || B->getOp() == Op::Sub) &&
          quickInvariant(B->getRHS(), L)) {
        Cur = B->getLHS();
        continue;
      }
      if (B->getOp() == Op::Add && quickInvariant(B->getLHS(), L)) {
        Cur = B->getRHS();
        continue;
      }
    }
    break;
  }

  const auto *Phi = nir::dyn_cast<PhiInst>(Cur);
  if (!Phi || Phi->getParent() != L.getHeader())
    return false;

  // One incoming from inside must be phi +/- nonzero constant.
  for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
    const BasicBlock *In = Phi->getIncomingBlock(K);
    if (!L.contains(In))
      continue;
    const auto *Step =
        nir::dyn_cast<nir::BinaryInst>(Phi->getIncomingValue(K));
    if (!Step)
      return false;
    using Op = nir::BinaryInst::Op;
    if (Step->getOp() != Op::Add && Step->getOp() != Op::Sub)
      return false;
    const Value *Base = Step->getLHS();
    const Value *Amount = Step->getRHS();
    if (Step->getOp() == Op::Add && Base != Phi)
      std::swap(Base, Amount);
    if (Base != Phi)
      return false;
    const auto *C = nir::dyn_cast<ConstantInt>(Amount);
    if (!C || C->isZero())
      return false;
    if (MinAbsStep) {
      const int64_t S = C->getValue();
      const uint64_t Abs = S < 0 ? static_cast<uint64_t>(-S)
                                 : static_cast<uint64_t>(S);
      *MinAbsStep = std::min(*MinAbsStep, Abs);
    }
  }
  return true;
}

/// Address characterization for the same-iteration test: base pointer +
/// index value + scale.
struct AddrKey {
  const Value *Base = nullptr;
  const Value *Index = nullptr;
  uint64_t Scale = 0;
  uint64_t AccessSize = 0;
  bool Valid = false;
};

AddrKey addrKeyOf(const Instruction *I) {
  nir::MemAccess Acc;
  if (!nir::memoryAccessOf(I, Acc))
    return {};
  const Value *Ptr = Acc.Ptr;
  AddrKey K;
  K.AccessSize = Acc.Size;
  if (const auto *G = nir::dyn_cast<GEPInst>(Ptr)) {
    K.Base = G->getBase();
    K.Index = G->getIndex();
    K.Scale = G->getScale();
    K.Valid = true;
    return K;
  }
  K.Base = Ptr;
  K.Index = nullptr;
  K.Valid = true;
  return K;
}

} // namespace

void PDGBuilder::refineAllLoopCarried() {
  PDG &G = getPDG();
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    nir::DominatorTree DT(*F);
    nir::LoopInfo LI(*F, DT);
    // Preorder visits outer loops before inner ones; refining inner
    // loops last leaves every edge with the verdict of its innermost
    // enclosing loop.
    for (LoopStructure *L : LI.getLoopsInPreorder())
      refineLoopCarried(*L, G);
  }
}

void PDGBuilder::refineLoopCarried(LoopStructure &L, PDG &G) {
  for (auto *E : G.getEdges()) {
    auto *From = nir::dyn_cast<Instruction>(E->From);
    auto *To = nir::dyn_cast<Instruction>(E->To);
    if (!From || !To || !L.contains(From) || !L.contains(To))
      continue;

    if (E->IsControl)
      continue;

    if (!E->IsMemory) {
      // A register dependence is loop-carried iff it feeds a header phi
      // through a latch edge (the value crosses the back edge).
      auto *Phi = nir::dyn_cast<PhiInst>(To);
      if (Phi && Phi->getParent() == L.getHeader()) {
        for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
          if (Phi->getIncomingValue(K) == From &&
              L.contains(Phi->getIncomingBlock(K))) {
            E->IsLoopCarried = true;
            E->Distance = 1;
          }
      }
      continue;
    }

    // Memory dependences: conservatively loop-carried, unless both
    // accesses hit the same address every iteration through a
    // strictly-monotonic affine index (then each iteration touches a
    // distinct location, so the dependence cannot cross iterations).
    E->IsLoopCarried = true;

    // Self-dependences of a store through an injective IV address are
    // not real: each iteration writes a different location.
    AddrKey KA = addrKeyOf(From);
    AddrKey KB = addrKeyOf(To);
    if (KA.Valid && KB.Valid && KA.Base == KB.Base &&
        KA.Index == KB.Index && KA.Scale == KB.Scale) {
      uint64_t MinStep = UINT64_MAX;
      if (KA.Index && isMonotonicAffineIV(KA.Index, L, &MinStep)) {
        // Scalar accesses (one granule) advance past themselves on any
        // nonzero step; a superword access additionally needs the address
        // stride per iteration to clear its full extent.
        const uint64_t MaxSize = std::max(KA.AccessSize, KB.AccessSize);
        const bool StrideClears =
            MaxSize <= 8 ||
            (MinStep != UINT64_MAX && KA.Scale != 0 &&
             MinStep <= UINT64_MAX / KA.Scale && MinStep * KA.Scale >= MaxSize);
        if (StrideClears) {
          E->IsLoopCarried = false;
          E->Distance = 0;
        }
      } else if (!KA.Index && From == To) {
        // Same scalar location every iteration: a self WAW on a fixed
        // address is genuinely loop-carried; keep it.
      }
    }
  }
}
