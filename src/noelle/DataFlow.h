//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's data-flow engine (DFE): a generic bitvector framework with
/// block-granularity worklist solving (the optimizations the paper lists:
/// bitvectors, basic-block granularity, worklist, RPO priority), plus the
/// stock analyses built on it (liveness, reaching definitions).
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_DATAFLOW_H
#define NOELLE_DATAFLOW_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <functional>
#include <map>
#include <memory>

namespace noelle {

using nir::BasicBlock;
using nir::BitVector;
using nir::Function;
using nir::Instruction;
using nir::Value;

/// Result of a data-flow analysis: IN/OUT per instruction, over a
/// universe of values indexed densely.
class DataFlowResult {
public:
  DataFlowResult(std::vector<Value *> Universe);

  const std::vector<Value *> &getUniverse() const { return Universe; }
  unsigned indexOf(const Value *V) const;
  bool hasIndex(const Value *V) const { return Index.count(V) != 0; }

  const BitVector &in(const Instruction *I) const { return IN.at(I); }
  const BitVector &out(const Instruction *I) const { return OUT.at(I); }

  /// The universe members set in OUT(I).
  std::vector<Value *> outValues(const Instruction *I) const;
  std::vector<Value *> inValues(const Instruction *I) const;

private:
  friend class DataFlowEngine;
  std::vector<Value *> Universe;
  std::map<const Value *, unsigned> Index;
  std::map<const Instruction *, BitVector> IN, OUT;
};

/// A data-flow problem: direction, meet, and per-instruction GEN/KILL.
struct DataFlowProblem {
  bool Forward = true;
  bool MeetIsUnion = true; ///< false = intersection
  std::vector<Value *> Universe;
  /// Fills GEN and KILL for one instruction.
  std::function<void(const Instruction *, const DataFlowResult &,
                     BitVector &Gen, BitVector &Kill)>
      Transfer;
  /// Value at the boundary (entry for forward, exits for backward);
  /// empty by default.
  bool BoundaryAllOnes = false;
};

/// Solves data-flow problems to a fixed point.
class DataFlowEngine {
public:
  /// Runs \p P over \p F and returns per-instruction IN/OUT sets.
  std::unique_ptr<DataFlowResult> solve(Function &F,
                                        const DataFlowProblem &P) const;
};

/// Liveness: OUT(I) = values live after I. Universe = all instructions
/// and arguments producing values.
std::unique_ptr<DataFlowResult> computeLiveness(Function &F);

/// Reaching definitions: OUT(I) = definitions (stores and calls writing
/// memory are treated as defs of their own identity) reaching past I.
std::unique_ptr<DataFlowResult> computeReachingDefinitions(Function &F);

} // namespace noelle

#endif // NOELLE_DATAFLOW_H
