#include "noelle/Profiler.h"

#include "ir/Instructions.h"

#include <sstream>

using namespace noelle;
using nir::Instruction;

//===----------------------------------------------------------------------===//
// Profiler (observer)
//===----------------------------------------------------------------------===//

void Profiler::onBlockExecuted(const BasicBlock *BB) {
  if (BB != LastBlock) {
    LastBlock = BB;
    LastBlockCount = &Data.BlockCounts[BB];
  }
  *LastBlockCount += 1;
  Data.TotalInstructions += BB->size();
}

void Profiler::onBranchExecuted(const BranchInst *Br, unsigned Taken) {
  if (Br != LastBranch) {
    LastBranch = Br;
    LastBranchCounts = &Data.BranchCounts[Br];
  }
  if (Taken == 0)
    ++LastBranchCounts->first;
  else
    ++LastBranchCounts->second;
}

void Profiler::onCallExecuted(const nir::CallInst *, const Function *Callee) {
  Data.FnInvocations[Callee] += 1;
}

ProfileData Profiler::takeData() {
  LastBlock = nullptr;
  LastBlockCount = nullptr;
  LastBranch = nullptr;
  LastBranchCounts = nullptr;
  return std::move(Data);
}

ProfileData Profiler::profileModule(Module &M) {
  nir::ExecutionEngine Engine(M);
  Profiler P;
  Engine.setObserver(&P);
  Engine.runMain();
  Engine.setObserver(nullptr);
  ProfileData Data = P.takeData();
  if (const Function *Main = M.getFunction("main"))
    Data.FnInvocations[Main] += 1;
  return Data;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

uint64_t ProfileData::getBlockCount(const BasicBlock *BB) const {
  auto It = BlockCounts.find(BB);
  return It == BlockCounts.end() ? 0 : It->second;
}

uint64_t ProfileData::getBranchTakenCount(const BranchInst *Br,
                                          unsigned Idx) const {
  auto It = BranchCounts.find(Br);
  if (It == BranchCounts.end())
    return 0;
  return Idx == 0 ? It->second.first : It->second.second;
}

uint64_t ProfileData::getFunctionInvocations(const Function *F) const {
  auto It = FnInvocations.find(F);
  return It == FnInvocations.end() ? 0 : It->second;
}

double ProfileData::getLoopHotness(const nir::LoopStructure &L) const {
  if (!TotalInstructions)
    return 0;
  uint64_t InLoop = 0;
  for (const auto *BB : L.getBlocks())
    InLoop += getBlockCount(BB) * BB->size();
  return static_cast<double>(InLoop) /
         static_cast<double>(TotalInstructions);
}

double ProfileData::getFunctionHotness(const Function &F) const {
  if (!TotalInstructions)
    return 0;
  uint64_t InFn = 0;
  for (const auto &BB : F.getBlocks())
    InFn += getBlockCount(BB.get()) * BB->size();
  return static_cast<double>(InFn) / static_cast<double>(TotalInstructions);
}

uint64_t
ProfileData::getLoopInvocations(const nir::LoopStructure &L) const {
  uint64_t N = 0;
  for (const auto *Pred : L.getHeader()->predecessors()) {
    if (L.contains(Pred))
      continue; // Back edge, not an invocation.
    const auto *Br =
        nir::dyn_cast_or_null<BranchInst>(Pred->getTerminator());
    if (!Br)
      continue;
    if (!Br->isConditional()) {
      N += getBlockCount(Pred);
      continue;
    }
    for (unsigned S = 0; S < Br->getNumSuccessors(); ++S)
      if (Br->getSuccessor(S) == L.getHeader())
        N += getBranchTakenCount(Br, S);
  }
  return N;
}

uint64_t
ProfileData::getLoopTotalIterations(const nir::LoopStructure &L) const {
  return getBlockCount(L.getHeader());
}

double
ProfileData::getLoopAverageIterations(const nir::LoopStructure &L) const {
  uint64_t Inv = getLoopInvocations(L);
  if (!Inv)
    return 0;
  return static_cast<double>(getLoopTotalIterations(L)) /
         static_cast<double>(Inv);
}

//===----------------------------------------------------------------------===//
// Embedding (noelle-meta-prof-embed / noelle-meta-clean)
//===----------------------------------------------------------------------===//

namespace {
constexpr const char *BlockCountKey = "noelle.prof.bb";
constexpr const char *BranchCountKey = "noelle.prof.taken";
constexpr const char *FnCountKey = "noelle.prof.calls";
constexpr const char *TotalKey = "noelle.prof.total";
} // namespace

void ProfileData::embed(Module &M) const {
  for (const auto &F : M.getFunctions()) {
    uint64_t Inv = getFunctionInvocations(F.get());
    if (Inv)
      F->setMetadata(FnCountKey, std::to_string(Inv));
    for (const auto &BB : F->getBlocks()) {
      if (BB->empty())
        continue;
      uint64_t C = getBlockCount(BB.get());
      // Attach to the first instruction: block metadata does not survive
      // printing, instruction metadata does.
      BB->front()->setMetadata(BlockCountKey, std::to_string(C));
      if (const auto *Br =
              nir::dyn_cast_or_null<BranchInst>(BB->getTerminator())) {
        if (Br->isConditional()) {
          std::ostringstream OS;
          OS << getBranchTakenCount(Br, 0) << ","
             << getBranchTakenCount(Br, 1);
          const_cast<BranchInst *>(Br)->setMetadata(BranchCountKey, OS.str());
        }
      }
    }
  }
  M.setModuleMetadata(TotalKey, std::to_string(TotalInstructions));
}

ProfileData ProfileData::fromMetadata(Module &M) {
  ProfileData Data;
  std::string Total = M.getModuleMetadata(TotalKey);
  if (!Total.empty())
    Data.TotalInstructions = std::stoull(Total);
  for (const auto &F : M.getFunctions()) {
    std::string Inv = F->getMetadata(FnCountKey);
    if (!Inv.empty())
      Data.FnInvocations[F.get()] = std::stoull(Inv);
    for (const auto &BB : F->getBlocks()) {
      if (BB->empty())
        continue;
      std::string C = BB->front()->getMetadata(BlockCountKey);
      if (!C.empty())
        Data.BlockCounts[BB.get()] = std::stoull(C);
      if (const auto *Br =
              nir::dyn_cast_or_null<BranchInst>(BB->getTerminator())) {
        std::string T = Br->getMetadata(BranchCountKey);
        auto Comma = T.find(',');
        if (Comma != std::string::npos)
          Data.BranchCounts[Br] = {std::stoull(T.substr(0, Comma)),
                                   std::stoull(T.substr(Comma + 1))};
      }
    }
  }
  return Data;
}

void ProfileData::clean(Module &M) {
  M.removeModuleMetadata(TotalKey);
  for (const auto &F : M.getFunctions()) {
    F->removeMetadata(FnCountKey);
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        I->removeMetadata(BlockCountKey);
        I->removeMetadata(BranchCountKey);
      }
  }
}

bool ProfileData::isEmbedded(const Module &M) {
  return M.hasModuleMetadata(TotalKey);
}
