#include "noelle/CallGraph.h"

#include "ir/Instructions.h"

using namespace noelle;

CallGraph::CallGraph(Module &M, nir::AndersenAliasAnalysis &AA) : M(M) {
  std::map<std::pair<Function *, Function *>, CallGraphEdge *> Existing;

  auto AddEdge = [&](Function *Caller, Function *Callee, bool Must,
                     const CallInst *Site) {
    auto Key = std::make_pair(Caller, Callee);
    auto It = Existing.find(Key);
    CallGraphEdge *E;
    if (It != Existing.end()) {
      E = It->second;
      // A may sub-edge does not downgrade a must edge, but an additional
      // must sub-edge upgrades the relation.
      E->IsMust = E->IsMust || Must;
    } else {
      auto NewE = std::make_unique<CallGraphEdge>();
      NewE->Caller = Caller;
      NewE->Callee = Callee;
      NewE->IsMust = Must;
      E = NewE.get();
      Edges.push_back(std::move(NewE));
      Existing[Key] = E;
      Out[Caller].push_back(E);
      In[Callee].push_back(E);
    }
    E->CallSites.push_back(Site);
  };

  for (const auto &F : M.getFunctions()) {
    for (const auto &BB : F->getBlocks())
      for (const auto &I : BB->getInstList()) {
        const auto *C = nir::dyn_cast<CallInst>(I.get());
        if (!C)
          continue;
        if (Function *Direct = C->getCalledFunction()) {
          AddEdge(F.get(), Direct, /*Must=*/true, C);
          continue;
        }
        for (Function *Target : AA.getIndirectCallees(C))
          AddEdge(F.get(), Target, /*Must=*/false, C);
      }
  }
}

std::vector<CallGraphEdge *> CallGraph::getCallees(Function *F) const {
  auto It = Out.find(F);
  return It == Out.end() ? std::vector<CallGraphEdge *>() : It->second;
}

std::vector<CallGraphEdge *> CallGraph::getCallers(Function *F) const {
  auto It = In.find(F);
  return It == In.end() ? std::vector<CallGraphEdge *>() : It->second;
}

bool CallGraph::mayInvoke(Function *Caller, Function *Callee) const {
  for (const auto *E : getCallees(Caller))
    if (E->Callee == Callee)
      return true;
  return false;
}

std::set<Function *>
CallGraph::getReachableFrom(const std::vector<Function *> &Roots) const {
  std::set<Function *> Reached;
  std::vector<Function *> Work = Roots;
  while (!Work.empty()) {
    Function *F = Work.back();
    Work.pop_back();
    if (!Reached.insert(F).second)
      continue;
    for (const auto *E : getCallees(F))
      Work.push_back(E->Callee);
  }
  return Reached;
}

std::vector<std::set<Function *>> CallGraph::getIslands() const {
  std::vector<std::set<Function *>> Islands;
  std::set<Function *> Visited;
  for (const auto &F : M.getFunctions()) {
    if (Visited.count(F.get()))
      continue;
    std::set<Function *> Island;
    std::vector<Function *> Work = {F.get()};
    while (!Work.empty()) {
      Function *Cur = Work.back();
      Work.pop_back();
      if (!Island.insert(Cur).second)
        continue;
      Visited.insert(Cur);
      for (const auto *E : getCallees(Cur))
        Work.push_back(E->Callee);
      for (const auto *E : getCallers(Cur))
        Work.push_back(E->Caller);
    }
    Islands.push_back(std::move(Island));
  }
  return Islands;
}
