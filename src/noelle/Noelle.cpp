#include "noelle/Noelle.h"

using namespace noelle;
using nir::Function;

//===----------------------------------------------------------------------===//
// LoopContent
//===----------------------------------------------------------------------===//

LoopContent::LoopContent(nir::LoopStructure &LS, PDGBuilder &Builder)
    : LS(LS) {
  LoopDG = Builder.getLoopDG(LS);
  Dag = std::make_unique<SCCDAG>(*LoopDG, LS);
  Inv = std::make_unique<InvariantManager>(LS, *LoopDG);
  IVs = std::make_unique<InductionVariableManager>(LS, *Dag, *Inv);
  Reds = std::make_unique<ReductionManager>(*Dag);
  Env = std::make_unique<Environment>(LS);
}

//===----------------------------------------------------------------------===//
// Noelle manager
//===----------------------------------------------------------------------===//

Noelle::Noelle(nir::Module &M, NoelleOptions Opts) : M(M), Opts(Opts) {
  Builder = std::make_unique<PDGBuilder>(M, Opts.PDGOptions);
}

Noelle::~Noelle() = default;

PDG &Noelle::getPDG() {
  Requested.insert("PDG");
  return Builder->getPDG();
}

CallGraph &Noelle::getCallGraph() {
  Requested.insert("CG");
  if (!CG) {
    CGPointsTo = std::make_unique<nir::AndersenAliasAnalysis>(M);
    CG = std::make_unique<CallGraph>(M, *CGPointsTo);
  }
  return *CG;
}

nir::DominatorTree &Noelle::getDominators(Function &F) {
  auto It = DTs.find(&F);
  if (It == DTs.end())
    It = DTs.emplace(&F, std::make_unique<nir::DominatorTree>(F)).first;
  return *It->second;
}

nir::LoopInfo &Noelle::getLoopInfo(Function &F) {
  Requested.insert("LS");
  auto It = LIs.find(&F);
  if (It == LIs.end())
    It = LIs
             .emplace(&F, std::make_unique<nir::LoopInfo>(
                              F, getDominators(F)))
             .first;
  return *It->second;
}

std::vector<LoopContent *> Noelle::getLoopContents() {
  Requested.insert("L");
  Requested.insert("PDG");
  Requested.insert("aSCCDAG");
  Requested.insert("INV");
  Requested.insert("IV");
  Requested.insert("RD");
  Requested.insert("ENV");
  if (!LoopsComputed) {
    LoopsComputed = true;
    for (const auto &F : M.getFunctions()) {
      if (F->isDeclaration())
        continue;
      nir::LoopInfo &LI = getLoopInfo(*F);
      for (nir::LoopStructure *LS : LI.getLoopsInPreorder())
        Loops.push_back(std::make_unique<LoopContent>(*LS, *Builder));
    }
  }

  std::vector<LoopContent *> Out;
  ProfileData *Prof =
      Opts.MinimumLoopHotness > 0 ? getProfiles(false) : nullptr;
  for (const auto &LC : Loops) {
    if (Prof && Prof->getLoopHotness(LC->getLoopStructure()) <
                    Opts.MinimumLoopHotness)
      continue;
    Out.push_back(LC.get());
  }
  return Out;
}

Forest<LoopContent> &Noelle::getLoopForest() {
  Requested.insert("FR");
  if (!LoopForest) {
    LoopForest = std::make_unique<Forest<LoopContent>>();
    auto Contents = getLoopContents();
    // Parents appear before children in preorder; map LS -> node.
    std::map<const nir::LoopStructure *, Forest<LoopContent>::Node *> NodeOf;
    for (LoopContent *LC : Contents) {
      nir::LoopStructure *Parent = LC->getLoopStructure().getParentLoop();
      Forest<LoopContent>::Node *ParentNode =
          Parent && NodeOf.count(Parent) ? NodeOf[Parent] : nullptr;
      NodeOf[&LC->getLoopStructure()] =
          LoopForest->addNode(LC, ParentNode);
    }
  }
  return *LoopForest;
}

DataFlowEngine &Noelle::getDataFlowEngine() {
  Requested.insert("DFE");
  return DFE;
}

ProfileData *Noelle::getProfiles(bool CollectIfMissing) {
  Requested.insert("PRO");
  if (!ProfilesLoaded) {
    ProfilesLoaded = true;
    if (ProfileData::isEmbedded(M))
      Profiles = std::make_unique<ProfileData>(ProfileData::fromMetadata(M));
  }
  if (!Profiles && CollectIfMissing)
    Profiles = std::make_unique<ProfileData>(Profiler::profileModule(M));
  return Profiles.get();
}

Architecture &Noelle::getArchitecture() {
  Requested.insert("AR");
  if (!Arch)
    Arch = std::make_unique<Architecture>(Opts.MeasureArchitecture);
  return *Arch;
}

LoopBuilder &Noelle::getLoopBuilder() {
  Requested.insert("LB");
  if (!LB)
    LB = std::make_unique<LoopBuilder>(M.getContext());
  return *LB;
}

Scheduler Noelle::getScheduler(Function &F) {
  Requested.insert("SCD");
  return Scheduler(getFunctionDG(F), getDominators(F));
}

PDG &Noelle::getFunctionDG(Function &F) {
  auto It = FnDGs.find(&F);
  if (It == FnDGs.end())
    It = FnDGs.emplace(&F, Builder->getFunctionDG(F)).first;
  return *It->second;
}

void Noelle::invalidateLoops() {
  Loops.clear();
  LoopsComputed = false;
  LoopForest.reset();
  DTs.clear();
  LIs.clear();
  FnDGs.clear();
}
