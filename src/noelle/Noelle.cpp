#include "noelle/Noelle.h"

#include "planner/Planner.h"

using namespace noelle;
using nir::Function;

//===----------------------------------------------------------------------===//
// LoopContent
//===----------------------------------------------------------------------===//

LoopContent::LoopContent(nir::LoopStructure &LS, PDGBuilder &Builder)
    : LS(LS) {
  LoopDG = Builder.getLoopDG(LS);
  Dag = std::make_unique<SCCDAG>(*LoopDG, LS);
  Inv = std::make_unique<InvariantManager>(LS, *LoopDG);
  IVs = std::make_unique<InductionVariableManager>(LS, *Dag, *Inv);
  Reds = std::make_unique<ReductionManager>(*Dag);
  Env = std::make_unique<Environment>(LS);
}

//===----------------------------------------------------------------------===//
// Noelle manager
//===----------------------------------------------------------------------===//

Noelle::Noelle(nir::Module &M, NoelleOptions Opts) : M(M), Opts(Opts) {
  Builder = std::make_unique<PDGBuilder>(M, Opts.PDGOptions);
}

Noelle::~Noelle() = default;

PDG &Noelle::getPDG() {
  Requested.insert(Abstraction::PDG);
  return Builder->getPDG();
}

void Noelle::refinePDGLoopCarried() { Builder->refineAllLoopCarried(); }

CallGraph &Noelle::getCallGraph() {
  Requested.insert(Abstraction::CG);
  if (!CG) {
    CGPointsTo = std::make_unique<nir::AndersenAliasAnalysis>(M);
    CG = std::make_unique<CallGraph>(M, *CGPointsTo);
  }
  return *CG;
}

nir::DominatorTree &Noelle::getDominators(Function &F) {
  auto It = DTs.find(&F);
  if (It == DTs.end())
    It = DTs.emplace(&F, std::make_unique<nir::DominatorTree>(F)).first;
  return *It->second;
}

nir::LoopInfo &Noelle::getLoopInfo(Function &F) {
  Requested.insert(Abstraction::LS);
  auto It = LIs.find(&F);
  if (It == LIs.end())
    It = LIs
             .emplace(&F, std::make_unique<nir::LoopInfo>(
                              F, getDominators(F)))
             .first;
  return *It->second;
}

std::span<LoopContent *const> Noelle::getLoopContents() {
  Requested.insert(Abstraction::L);
  Requested.insert(Abstraction::PDG);
  Requested.insert(Abstraction::aSCCDAG);
  Requested.insert(Abstraction::INV);
  Requested.insert(Abstraction::IV);
  Requested.insert(Abstraction::RD);
  Requested.insert(Abstraction::ENV);

  // Discover loops of any function not yet covered (all of them on the
  // first call; only the invalidated ones after a transform).
  for (const auto &F : M.getFunctions()) {
    if (F->isDeclaration())
      continue;
    if (LoopsByFn.count(F.get()))
      continue;
    auto &Bundles = LoopsByFn[F.get()];
    nir::LoopInfo &LI = getLoopInfo(*F);
    for (nir::LoopStructure *LS : LI.getLoopsInPreorder())
      Bundles.push_back(std::make_unique<LoopContent>(*LS, *Builder));
    LoopOrderValid = false;
  }

  if (!LoopOrderValid) {
    LoopOrderValid = true;
    LoopOrder.clear();
    ProfileData *Prof =
        Opts.MinimumLoopHotness > 0 ? getProfiles(false) : nullptr;
    for (const auto &F : M.getFunctions()) {
      auto It = LoopsByFn.find(F.get());
      if (It == LoopsByFn.end())
        continue;
      for (const auto &LC : It->second) {
        if (Prof && Prof->getLoopHotness(LC->getLoopStructure()) <
                        Opts.MinimumLoopHotness)
          continue;
        LoopOrder.push_back(LC.get());
      }
    }
  }
  return LoopOrder;
}

Forest<LoopContent> &Noelle::getLoopForest() {
  Requested.insert(Abstraction::FR);
  if (!LoopForest) {
    LoopForest = std::make_unique<Forest<LoopContent>>();
    auto Contents = getLoopContents();
    // Parents appear before children in preorder; map LS -> node.
    std::map<const nir::LoopStructure *, Forest<LoopContent>::Node *> NodeOf;
    for (LoopContent *LC : Contents) {
      nir::LoopStructure *Parent = LC->getLoopStructure().getParentLoop();
      Forest<LoopContent>::Node *ParentNode =
          Parent && NodeOf.count(Parent) ? NodeOf[Parent] : nullptr;
      NodeOf[&LC->getLoopStructure()] =
          LoopForest->addNode(LC, ParentNode);
    }
  }
  return *LoopForest;
}

DataFlowEngine &Noelle::getDataFlowEngine() {
  Requested.insert(Abstraction::DFE);
  return DFE;
}

ProfileData *Noelle::getProfiles(bool CollectIfMissing) {
  Requested.insert(Abstraction::PRO);
  if (!ProfilesLoaded) {
    ProfilesLoaded = true;
    if (ProfileData::isEmbedded(M))
      Profiles = std::make_unique<ProfileData>(ProfileData::fromMetadata(M));
  }
  if (!Profiles && CollectIfMissing)
    Profiles = std::make_unique<ProfileData>(Profiler::profileModule(M));
  return Profiles.get();
}

Architecture &Noelle::getArchitecture() {
  Requested.insert(Abstraction::AR);
  if (!Arch)
    Arch = std::make_unique<Architecture>(Opts.MeasureArchitecture);
  return *Arch;
}

LoopBuilder &Noelle::getLoopBuilder() {
  Requested.insert(Abstraction::LB);
  if (!LB)
    LB = std::make_unique<LoopBuilder>(M.getContext());
  return *LB;
}

Scheduler Noelle::getScheduler(Function &F) {
  Requested.insert(Abstraction::SCD);
  return Scheduler(getFunctionDG(F), getDominators(F));
}

planner::Planner &Noelle::getPlanner() {
  if (!ThePlanner)
    ThePlanner = std::make_unique<planner::Planner>(*this);
  return *ThePlanner;
}

PDG &Noelle::getFunctionDG(Function &F) {
  auto It = FnDGs.find(&F);
  if (It == FnDGs.end())
    It = FnDGs.emplace(&F, Builder->getFunctionDG(F)).first;
  return *It->second;
}

void Noelle::invalidate(Function &F) {
  // The forest references bundles about to die; drop it before them.
  LoopForest.reset();
  LoopOrder.clear();
  LoopOrderValid = false;
  LoopsByFn.erase(&F);
  FnDGs.erase(&F);
  LIs.erase(&F);
  DTs.erase(&F);
  // Whole-program structures see the mutation regardless of which
  // function hosts it: the PDG spans every function, and the alias
  // analyses and mod/ref summaries are interprocedural.
  Builder->invalidate();
}

void Noelle::invalidateAll() {
  LoopForest.reset();
  LoopOrder.clear();
  LoopOrderValid = false;
  LoopsByFn.clear();
  FnDGs.clear();
  LIs.clear();
  DTs.clear();
  CG.reset();
  CGPointsTo.reset();
  Builder->invalidate();
}
