#include "noelle/Scheduler.h"

#include "ir/Instructions.h"

#include <algorithm>

using namespace noelle;
using nir::Instruction;
using nir::PhiInst;

namespace {

/// Position of \p I within its block, counted from the front.
int positionInBlock(const Instruction *I) {
  int Pos = 0;
  for (const auto &Cur : I->getParent()->getInstList()) {
    if (Cur.get() == I)
      return Pos;
    ++Pos;
  }
  return -1;
}

} // namespace

bool Scheduler::canMoveBefore(Instruction *I, Instruction *Pos) const {
  if (I == Pos)
    return false;
  if (I->isTerminator() || nir::isa<PhiInst>(I))
    return false;
  if (nir::isa<PhiInst>(Pos) && Pos->getParent() == I->getParent())
    return false; // Cannot move above the phi group.
  if (I->getParent() != Pos->getParent())
    return false; // The generic scheduler moves within one block.

  int From = positionInBlock(I);
  int To = positionInBlock(Pos);
  assert(From >= 0 && To >= 0);
  if (From == To)
    return false;

  // Instructions crossed by the move must have no PDG ordering edge
  // with I in the direction that the move would reverse.
  int Lo = std::min(From, To == From ? From : To);
  int Hi = std::max(From, To);
  bool MovingUp = To < From;
  int Idx = 0;
  for (const auto &Cur : I->getParent()->getInstList()) {
    Instruction *C = Cur.get();
    bool Crossed = MovingUp ? (Idx >= Lo && Idx < From)
                            : (Idx > From && Idx < Hi);
    ++Idx;
    if (!Crossed || C == I)
      continue;
    // Moving up: C currently precedes I; any C -> I dependence breaks.
    // Moving down: I currently precedes C; any I -> C dependence breaks.
    Instruction *Before = MovingUp ? C : I;
    Instruction *After = MovingUp ? I : C;
    for (const auto *E : FnDG.getOutEdges(Before))
      if (E->To == After && !E->IsLoopCarried)
        return false;
  }
  return true;
}

bool Scheduler::moveBefore(Instruction *I, Instruction *Pos) const {
  if (!canMoveBefore(I, Pos))
    return false;
  I->moveBefore(Pos);
  return true;
}

bool Scheduler::canPlaceAtEndOf(Instruction *I, BasicBlock *BB) const {
  if (I->isTerminator() || nir::isa<PhiInst>(I) || I->mayReadOrWriteMemory())
    return false;
  Instruction *Term = BB->getTerminator();
  if (!Term)
    return false;
  for (const nir::Value *Op : I->operands()) {
    const auto *OpI = nir::dyn_cast<Instruction>(Op);
    if (!OpI)
      continue;
    if (!DT.dominates(OpI, Term))
      return false;
  }
  return true;
}

unsigned BasicBlockScheduler::schedule(
    BasicBlock *BB,
    const std::function<int(const Instruction *)> &Rank) const {
  // Gather movable (non-phi, non-terminator) instructions.
  std::vector<Instruction *> Body;
  for (const auto &I : BB->getInstList()) {
    if (nir::isa<PhiInst>(I.get()) || I->isTerminator())
      continue;
    Body.push_back(I.get());
  }
  if (Body.size() < 2)
    return 0;

  // Dependence edges restricted to the block body.
  std::map<Instruction *, std::set<Instruction *>> Preds;
  std::map<Instruction *, unsigned> InDeg;
  for (Instruction *I : Body)
    InDeg[I] = 0;
  for (size_t A = 0; A < Body.size(); ++A)
    for (const auto *E : FnDG.getOutEdges(Body[A])) {
      auto *To = nir::dyn_cast<Instruction>(E->To);
      if (!To || E->IsLoopCarried)
        continue;
      if (!InDeg.count(To) || To == Body[A])
        continue;
      // Only forward (program-order) edges constrain the schedule.
      if (positionInBlock(Body[A]) > positionInBlock(To))
        continue;
      if (Preds[To].insert(Body[A]).second)
        ++InDeg[To];
    }

  // List scheduling by (rank, original position).
  std::map<Instruction *, int> OrigPos;
  for (Instruction *I : Body)
    OrigPos[I] = positionInBlock(I);
  std::vector<Instruction *> Ready;
  for (Instruction *I : Body)
    if (InDeg[I] == 0)
      Ready.push_back(I);

  std::vector<Instruction *> NewOrder;
  while (!Ready.empty()) {
    auto Best = std::min_element(
        Ready.begin(), Ready.end(), [&](Instruction *A, Instruction *B) {
          int RA = Rank(A), RB = Rank(B);
          if (RA != RB)
            return RA < RB;
          return OrigPos[A] < OrigPos[B];
        });
    Instruction *I = *Best;
    Ready.erase(Best);
    NewOrder.push_back(I);
    for (auto &[To, Ps] : Preds)
      if (Ps.erase(I) && --InDeg[To] == 0)
        Ready.push_back(To);
  }
  assert(NewOrder.size() == Body.size() && "scheduling dropped instructions");

  // Apply: move each instruction before the terminator in the new order.
  unsigned Moved = 0;
  Instruction *Term = BB->getTerminator();
  for (size_t K = 0; K < NewOrder.size(); ++K) {
    if (NewOrder[K] != Body[K])
      ++Moved;
    if (Term)
      NewOrder[K]->moveBefore(Term);
    else
      NewOrder[K]->moveBeforeTerminator(BB);
  }
  return Moved;
}

unsigned LoopScheduler::shrinkHeader() const {
  BasicBlock *Header = L.getHeader();
  // Pick a sink target: the unique in-loop successor of the header.
  BasicBlock *Target = nullptr;
  for (BasicBlock *Succ : Header->successors())
    if (L.contains(Succ) && Succ != Header) {
      if (Target)
        return 0; // Two in-loop successors: keep it simple.
      Target = Succ;
    }
  if (!Target)
    return 0;
  // The target must be dominated by the header and have one predecessor
  // (otherwise sinking duplicates work on other paths).
  if (Target->predecessors().size() != 1)
    return 0;

  // Sink header instructions not used by the header's own terminator /
  // phis and with no memory hazards.
  unsigned Moved = 0;
  std::vector<Instruction *> Candidates;
  for (const auto &I : Header->getInstList()) {
    if (nir::isa<PhiInst>(I.get()) || I->isTerminator())
      continue;
    if (I->mayReadOrWriteMemory())
      continue;
    bool UsedInHeader = false;
    for (const auto &U : I->uses()) {
      auto *UserInst = nir::dyn_cast<Instruction>(
          static_cast<Value *>(U.TheUser));
      if (UserInst && UserInst->getParent() == Header) {
        UsedInHeader = true;
        break;
      }
    }
    if (!UsedInHeader)
      Candidates.push_back(I.get());
  }
  for (Instruction *I : Candidates) {
    Instruction *Anchor = Target->getFirstNonPhi();
    if (!Anchor)
      continue;
    I->moveBefore(Anchor);
    ++Moved;
  }
  return Moved;
}
