//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's loop builder (LB): the IRBuilder-of-loops. Provides the loop
/// transformations custom tools compose: preheader insertion, hoisting
/// into the preheader, while -> do-while rotation, and latch-exit
/// canonicalization (Table 1: "split a loop, translate do-while loops to
/// while form and vice versa").
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_LOOPBUILDER_H
#define NOELLE_LOOPBUILDER_H

#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"

namespace noelle {

using nir::BasicBlock;
using nir::Instruction;

/// Mutates loops while keeping the IR verifiable. After structural
/// changes, loop analyses (LoopInfo, DG, SCCDAG) must be recomputed —
/// LoopBuilder invalidates them by design, like LLVM loop passes.
class LoopBuilder {
public:
  explicit LoopBuilder(nir::Context &Ctx) : Ctx(Ctx) {}

  /// Ensures \p L has a dedicated preheader, creating one if needed.
  /// Returns it.
  BasicBlock *getOrCreatePreheader(nir::LoopStructure &L);

  /// Moves \p I to the end of the preheader (before its terminator).
  /// The caller must have established that \p I is loop-invariant and
  /// safe to execute unconditionally.
  void hoistToPreheader(nir::LoopStructure &L, Instruction *I);

  /// Rotates a while-shaped loop (header is the unique exiting block,
  /// terminated by a conditional branch) into do-while form by cloning
  /// the header's exit test into the preheader (guard) and every latch.
  /// Returns false when the loop does not match the supported shape.
  bool rotateWhileToDoWhile(nir::LoopStructure &L);

private:
  nir::Context &Ctx;
};

} // namespace noelle

#endif // NOELLE_LOOPBUILDER_H
