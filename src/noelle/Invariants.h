//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's invariant abstraction (INV): loop-invariance decided through
/// the PDG, implementing the paper's Algorithm 2. The contrast with
/// LLVM's low-level Algorithm 1 (see src/baselines/LLVMInvariants.h) is
/// the subject of Figure 4.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_INVARIANTS_H
#define NOELLE_INVARIANTS_H

#include "noelle/PDG.h"

#include <set>

namespace noelle {

/// Decides loop-invariance of values/instructions for one loop using the
/// loop dependence graph: an instruction is invariant iff everything it
/// depends on (register, memory, and control dependences alike) is
/// defined outside the loop or itself invariant, with cycles broken
/// pessimistically (Algorithm 2).
class InvariantManager {
public:
  InvariantManager(nir::LoopStructure &L, PDG &LoopDG);

  /// True if \p V is invariant across all iterations of the loop.
  bool isLoopInvariant(const Value *V);

  /// All invariant instructions of the loop, in block order.
  std::vector<Instruction *> getInvariants();

  nir::LoopStructure &getLoop() const { return L; }

private:
  bool isInvariantRec(const Value *V, std::set<const Value *> &InStack);

  nir::LoopStructure &L;
  PDG &LoopDG;
  std::map<const Value *, bool> Memo;
};

} // namespace noelle

#endif // NOELLE_INVARIANTS_H
