//===----------------------------------------------------------------------===//
///
/// \file
/// The Program Dependence Graph abstraction: the dependence-graph template
/// instantiated over IR values, built from register def-use chains,
/// alias-analysis-powered memory disambiguation, interprocedural mod/ref
/// summaries, and post-dominance-based control dependences.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_PDG_H
#define NOELLE_PDG_H

#include "analysis/AliasAnalysis.h"
#include "analysis/LoopInfo.h"
#include "noelle/DependenceGraph.h"

#include <memory>

namespace noelle {

using nir::Function;
using nir::Instruction;
using nir::LoopStructure;
using nir::Module;
using nir::Value;

/// The PDG: nodes are instructions (plus external nodes for region
/// live-ins/outs in derived graphs).
class PDG : public DependenceGraph<Value> {
public:
  /// Statistics from construction, used by the Figure 3 experiment.
  struct Stats {
    uint64_t MemoryPairsQueried = 0;  ///< potential memory dependences
    uint64_t MemoryPairsDisproved = 0; ///< proven NoAlias / NoModRef
  };

  const Stats &getStats() const { return TheStats; }
  Stats &getStatsMutable() { return TheStats; }

private:
  Stats TheStats;
};

/// Options controlling PDG precision; the "llvm" configuration models
/// what stock LLVM can prove, the "noelle" configuration adds the
/// SCAF/SVF-class analyses the paper integrates.
struct PDGBuildOptions {
  std::string AliasAnalysisName = "noelle"; ///< none | llvm | noelle
  bool UseModRefSummaries = true; ///< interprocedural call mod/ref pruning
};

/// Builds whole-program and per-scope dependence graphs.
class PDGBuilder {
public:
  PDGBuilder(Module &M, PDGBuildOptions Opts = {});
  ~PDGBuilder();

  /// The whole-program PDG (memoized).
  PDG &getPDG();

  /// A dependence graph restricted to one function. Instructions of the
  /// function are internal nodes; referenced globals and arguments are
  /// external.
  std::unique_ptr<PDG> getFunctionDG(Function &F);

  /// A dependence graph restricted to one loop, with loop-centric
  /// refinement of loop-carried flags. Instructions of the loop are
  /// internal; values flowing in/out (live-ins / live-outs) are external.
  std::unique_ptr<PDG> getLoopDG(LoopStructure &L);

  nir::AliasAnalysis &getAliasAnalysis() { return *AA; }

private:
  void buildFunctionDeps(Function &F, PDG &G, PDG::Stats &Stats);
  void buildControlDeps(Function &F, PDG &G);

  /// True if \p Call may read or write the memory reached through
  /// \p Ptr, given the interprocedural summaries.
  bool callMayTouch(const nir::CallInst *Call, const Value *Ptr);

  /// Marks loop-carried flags on \p G's edges for loop \p L.
  void refineLoopCarried(LoopStructure &L, PDG &G);

  Module &M;
  PDGBuildOptions Opts;
  std::unique_ptr<nir::AliasAnalysis> AA;
  std::unique_ptr<nir::AndersenAliasAnalysis> SummaryAA; ///< for summaries
  std::unique_ptr<PDG> WholePDG;

  /// Per-function transitive sets of abstract objects read/written.
  std::map<const Function *, std::set<const Value *>> ReadSet, WriteSet;
  std::map<const Function *, bool> TouchesUnknown;
  bool SummariesBuilt = false;
  void buildModRefSummaries();
};

} // namespace noelle

#endif // NOELLE_PDG_H
