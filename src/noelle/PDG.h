//===----------------------------------------------------------------------===//
///
/// \file
/// The Program Dependence Graph abstraction: the dependence-graph template
/// instantiated over IR values, built from register def-use chains,
/// alias-analysis-powered memory disambiguation, interprocedural mod/ref
/// summaries, and post-dominance-based control dependences.
///
/// Construction is parallel (one job per defined function on the shared
/// analysis thread pool, deterministically merged), and the finished
/// whole-program graph can be embedded into the IR as module-level
/// metadata keyed by deterministic instruction IDs plus a module content
/// hash, so downstream tools load it instead of recomputing (the paper's
/// noelle-pdg-embed / noelle-load workflow).
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_PDG_H
#define NOELLE_PDG_H

#include "analysis/AliasAnalysis.h"
#include "analysis/LoopInfo.h"
#include "noelle/DependenceGraph.h"

#include <memory>

namespace noelle {

using nir::Function;
using nir::Instruction;
using nir::LoopStructure;
using nir::Module;
using nir::Value;

/// Module-level metadata keys of the embedded whole-program PDG.
inline constexpr const char *PDGEmbedKey = "noelle.pdg.v2";
inline constexpr const char *PDGEmbedHashKey = "noelle.pdg.v2.hash";
inline constexpr const char *PDGEmbedEdgesKey = "noelle.pdg.v2.edges";
inline constexpr const char *PDGEmbedStatsKey = "noelle.pdg.v2.stats";

/// The PDG: nodes are instructions (plus external nodes for region
/// live-ins/outs in derived graphs).
class PDG : public DependenceGraph<Value> {
public:
  /// Statistics from construction, used by the Figure 3 experiment.
  struct Stats {
    uint64_t MemoryPairsQueried = 0;  ///< potential memory dependences
    uint64_t MemoryPairsDisproved = 0; ///< proven NoAlias / NoModRef
  };

  const Stats &getStats() const { return TheStats; }
  Stats &getStatsMutable() { return TheStats; }

  /// Serializes this whole-program PDG into \p M as module-level
  /// metadata: fresh deterministic instruction IDs are assigned, every
  /// edge is encoded against them, and the module body's content hash is
  /// recorded so a later load can verify the IR is unchanged. All nodes
  /// must be instructions of \p M (the whole-program graph shape).
  void embed(Module &M) const;

  /// True if \p M carries a module-level embedded PDG.
  static bool hasEmbedded(const Module &M);

  /// Reconstructs the embedded PDG of \p M after verifying it: the
  /// recorded content hash must match the module body, and every edge
  /// endpoint ID must resolve to an instruction. Returns null when the
  /// module has no embedded PDG or verification fails (mutated IR).
  static std::unique_ptr<PDG> loadEmbedded(Module &M);

  /// Removes the module-level embedded PDG from \p M.
  static void clearEmbedded(Module &M);

private:
  Stats TheStats;
};

/// Options controlling PDG precision; the "llvm" configuration models
/// what stock LLVM can prove, the "noelle" configuration adds the
/// SCAF/SVF-class analyses the paper integrates.
struct PDGBuildOptions {
  std::string AliasAnalysisName = "noelle"; ///< none | llvm | noelle
  bool UseModRefSummaries = true; ///< interprocedural call mod/ref pruning
  /// Build per-function dependence subgraphs concurrently on the shared
  /// analysis thread pool; the merged result is bit-identical to the
  /// serial build.
  bool ParallelBuild = true;
  /// Worker count for the parallel build; 0 = hardware concurrency.
  unsigned Parallelism = 0;
  /// Load a module-embedded PDG instead of rebuilding when its content
  /// hash matches the module.
  bool UseEmbedded = true;
};

/// Builds whole-program and per-scope dependence graphs.
class PDGBuilder {
public:
  PDGBuilder(Module &M, PDGBuildOptions Opts = {});
  ~PDGBuilder();

  /// The whole-program PDG (memoized). Loaded from embedded metadata
  /// when present and verified; otherwise built — in parallel across
  /// functions unless the options say otherwise.
  PDG &getPDG();

  /// True if the last getPDG() materialization came from the embedded
  /// cache rather than a fresh build.
  bool wasPDGLoadedFromEmbedded() const { return LoadedFromEmbedded; }

  /// Marks loop-carried flags on the whole-program PDG for every
  /// natural loop of the module, innermost enclosing loop winning.
  /// Neither the fresh whole-program build nor the embedded cache
  /// carries this refinement (it is loop-scoped by nature); consumers
  /// that reason about which dependences cross iterations — e.g. the
  /// checker's race-detector grounding — call this once after getPDG().
  void refineAllLoopCarried();

  /// A dependence graph restricted to one function. Instructions of the
  /// function are internal nodes; referenced globals and arguments are
  /// external.
  std::unique_ptr<PDG> getFunctionDG(Function &F);

  /// A dependence graph restricted to one loop, with loop-centric
  /// refinement of loop-carried flags. Instructions of the loop are
  /// internal; values flowing in/out (live-ins / live-outs) are external.
  std::unique_ptr<PDG> getLoopDG(LoopStructure &L);

  /// Drops every memoized analysis result (the whole-program PDG, the
  /// alias analyses, and the mod/ref summaries). Must be called after
  /// the module is mutated: the memoized structures hold pointers into
  /// the old IR. Fresh analyses are rebuilt lazily on the next query.
  void invalidate();

  nir::AliasAnalysis &getAliasAnalysis() {
    ensureAA();
    return *AA;
  }

private:
  void ensureAA();
  void buildFunctionDeps(Function &F, PDG &G, PDG::Stats &Stats);
  void buildControlDeps(Function &F, PDG &G);
  /// Builds the whole-program graph serially (reference implementation).
  void buildWholeSerial(PDG &G);
  /// Builds per-function subgraphs on the analysis pool and merges them
  /// in module function order, which reproduces the serial edge order.
  void buildWholeParallel(PDG &G);

  /// True if \p Call may read or write the memory reached through
  /// \p Ptr, given the interprocedural summaries.
  bool callMayTouch(const nir::CallInst *Call, const Value *Ptr);

  /// Marks loop-carried flags on \p G's edges for loop \p L.
  void refineLoopCarried(LoopStructure &L, PDG &G);

  Module &M;
  PDGBuildOptions Opts;
  std::unique_ptr<nir::AliasAnalysis> AA;
  std::unique_ptr<nir::AndersenAliasAnalysis> SummaryAA; ///< for summaries
  std::unique_ptr<PDG> WholePDG;
  bool LoadedFromEmbedded = false;

  /// Per-function transitive sets of abstract objects read/written.
  /// Fully populated by buildModRefSummaries before any parallel phase;
  /// the const accessors below never mutate, so concurrent per-function
  /// jobs can query them lock-free.
  std::map<const Function *, std::set<const Value *>> ReadSet, WriteSet;
  std::map<const Function *, bool> TouchesUnknown;
  bool SummariesBuilt = false;
  void buildModRefSummaries();
  const std::set<const Value *> &readSetOf(const Function *F) const;
  const std::set<const Value *> &writeSetOf(const Function *F) const;
  bool touchesUnknown(const Function *F) const;
  std::set<const Value *> EmptyValueSet;
};

} // namespace noelle

#endif // NOELLE_PDG_H
