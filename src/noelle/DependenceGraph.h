//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's templated dependence graph: a directed multigraph of
/// dependences between nodes of any type (the PDG instantiates it with
/// IR values; the call graph uses functions). Nodes are split into
/// internal (belonging to the code region under analysis) and external
/// (live-ins/live-outs of that region), as described in Section 2.2 of
/// the paper.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_DEPENDENCEGRAPH_H
#define NOELLE_DEPENDENCEGRAPH_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <numeric>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

namespace noelle {

/// Kind of a data dependence.
enum class DataDepKind {
  RAW, ///< read-after-write (true/flow)
  WAW, ///< write-after-write (output)
  WAR, ///< write-after-read (anti)
};

/// One dependence edge with the attributes the paper lists: control vs
/// data, RAW/WAW/WAR, loop-carried flag, distance, memory vs register,
/// and apparent (may) vs actual (must).
template <typename NodeT> struct DependenceEdge {
  NodeT *From = nullptr;
  NodeT *To = nullptr;
  bool IsControl = false;
  DataDepKind Kind = DataDepKind::RAW;
  bool IsMemory = false;
  bool IsLoopCarried = false;
  bool IsMust = false; ///< actual dependence; false = apparent (may)
  /// Dependence distance in iterations when known; -1 = unknown.
  int64_t Distance = -1;
};

/// A directed multigraph of dependences between NodeT values.
template <typename NodeT> class DependenceGraph {
public:
  using EdgeT = DependenceEdge<NodeT>;

  /// Registers \p N. Internal nodes belong to the analyzed region;
  /// external nodes represent its live-ins/live-outs.
  void addNode(NodeT *N, bool Internal) {
    thaw();
    // Adding the first external node to an all-internal bulk-loaded
    // graph forces the internal set to become its own copy.
    if (SharedAllInternal && !Internal) {
      Internals = Nodes;
      SharedAllInternal = false;
    }
    if (Nodes.insert(N).second) {
      if (Internal) {
        if (!SharedAllInternal)
          Internals.insert(N);
      } else {
        Externals.insert(N);
      }
      return;
    }
    // Upgrading an external node to internal is allowed (e.g. when a
    // region grows); the reverse is not.
    if (Internal && Externals.count(N)) {
      Externals.erase(N);
      Internals.insert(N);
    }
  }

  bool hasNode(NodeT *N) const { return Nodes.count(N) != 0; }
  bool isInternal(NodeT *N) const {
    return SharedAllInternal ? hasNode(N) : Internals.count(N) != 0;
  }
  bool isExternal(NodeT *N) const { return Externals.count(N) != 0; }

  const std::set<NodeT *> &getNodes() const { return Nodes; }
  const std::set<NodeT *> &getInternalNodes() const {
    return SharedAllInternal ? Nodes : Internals;
  }
  const std::set<NodeT *> &getExternalNodes() const { return Externals; }

  /// Adds an edge; both endpoints must already be nodes.
  EdgeT *addEdge(const EdgeT &E) {
    assert(hasNode(E.From) && hasNode(E.To) &&
           "edge endpoints must be graph nodes");
    return addEdgeTrusted(E);
  }

  /// addEdge without the endpoint-membership check, for bulk paths that
  /// guarantee it structurally — the embedded-cache deserializer and the
  /// parallel build's subgraph merge, which both register every
  /// instruction as a node up front. The membership check walks two
  /// node sets per edge, which dominates bulk insertion cost.
  EdgeT *addEdgeTrusted(const EdgeT &E) {
    thaw();
    Edges.push_back({E, false});
    EdgeT *Raw = &Edges.back().E;
    OutEdges[E.From].push_back(Raw);
    InEdges[E.To].push_back(Raw);
    ++LiveEdges;
    return Raw;
  }

  /// Populates an empty graph in O(N + E): registers \p NodesInOrder as
  /// internal nodes, then adds \p NewEdges, whose endpoints
  /// \p Endpoints[i] gives as positions into \p NodesInOrder. The node
  /// sets are built from one sorted copy instead of N tree inserts, and
  /// the adjacency is laid out as a frozen CSR (two flat arrays plus
  /// offset tables) by counting sort — no per-node hash-table slots or
  /// list allocations, which is what makes loading a serialized PDG
  /// cheap relative to the analyses it skips. The first mutation thaws
  /// the CSR into the incremental adjacency maps (see thaw()).
  /// Observably equivalent to calling addNode then addEdgeTrusted per
  /// element.
  void bulkLoad(const std::vector<NodeT *> &NodesInOrder,
                std::vector<EdgeT> &&NewEdges,
                const std::vector<std::pair<uint32_t, uint32_t>> &Endpoints) {
    assert(Nodes.empty() && Edges.empty() && "bulkLoad on a used graph");
    assert(NewEdges.size() == Endpoints.size());

    const size_t N = NodesInOrder.size();
    std::vector<uint32_t> Ord(N);
    std::iota(Ord.begin(), Ord.end(), 0);
    std::sort(Ord.begin(), Ord.end(), [&](uint32_t A, uint32_t B) {
      return NodesInOrder[A] < NodesInOrder[B];
    });
    FrozenSorted.resize(N);
    FrozenPosOf.resize(N);
    for (size_t I = 0; I < N; ++I) {
      FrozenSorted[I] = NodesInOrder[Ord[I]];
      FrozenPosOf[I] = Ord[I];
    }
    assert(std::adjacent_find(FrozenSorted.begin(), FrozenSorted.end()) ==
               FrozenSorted.end() &&
           "duplicate nodes");
    Nodes = std::set<NodeT *>(FrozenSorted.begin(), FrozenSorted.end());
    // Every bulk-loaded node is internal: share the set instead of
    // copying the tree (see SharedAllInternal).
    SharedAllInternal = true;

    FrozenOutOff.assign(N + 1, 0);
    FrozenInOff.assign(N + 1, 0);
    for (const auto &[From, To] : Endpoints) {
      assert(From < N && To < N && "endpoint index out of range");
      ++FrozenOutOff[From + 1];
      ++FrozenInOff[To + 1];
    }
    std::partial_sum(FrozenOutOff.begin(), FrozenOutOff.end(),
                     FrozenOutOff.begin());
    std::partial_sum(FrozenInOff.begin(), FrozenInOff.end(),
                     FrozenInOff.begin());
    FrozenOut.resize(NewEdges.size());
    FrozenIn.resize(NewEdges.size());
    std::vector<uint32_t> OutCur(FrozenOutOff.begin(),
                                 FrozenOutOff.end() - 1);
    std::vector<uint32_t> InCur(FrozenInOff.begin(), FrozenInOff.end() - 1);
    for (size_t I = 0; I < NewEdges.size(); ++I) {
      assert(NewEdges[I].From == NodesInOrder[Endpoints[I].first] &&
             NewEdges[I].To == NodesInOrder[Endpoints[I].second] &&
             "endpoint indices disagree with edge pointers");
      Edges.push_back({std::move(NewEdges[I]), false});
      EdgeT *Raw = &Edges.back().E;
      FrozenOut[OutCur[Endpoints[I].first]++] = Raw;
      FrozenIn[InCur[Endpoints[I].second]++] = Raw;
    }
    LiveEdges = NewEdges.size();
    Frozen = true;
  }

  /// Convenience: register data dependence From -> To.
  EdgeT *addRegisterDep(NodeT *From, NodeT *To, DataDepKind Kind) {
    EdgeT E;
    E.From = From;
    E.To = To;
    E.Kind = Kind;
    E.IsMust = true;
    return addEdge(E);
  }

  /// Convenience: memory data dependence From -> To.
  EdgeT *addMemoryDep(NodeT *From, NodeT *To, DataDepKind Kind, bool Must) {
    EdgeT E;
    E.From = From;
    E.To = To;
    E.Kind = Kind;
    E.IsMemory = true;
    E.IsMust = Must;
    return addEdge(E);
  }

  /// Convenience: control dependence From (branch) -> To.
  EdgeT *addControlDep(NodeT *From, NodeT *To) {
    EdgeT E;
    E.From = From;
    E.To = To;
    E.IsControl = true;
    return addEdge(E);
  }

  /// Edges leaving \p N. The view is invalidated by any graph mutation
  /// (like iterators): mutating a bulk-loaded graph thaws its frozen CSR
  /// adjacency into the incremental maps.
  std::span<EdgeT *const> getOutEdges(NodeT *N) const {
    if (Frozen) {
      uint32_t Pos;
      if (!frozenPosOf(N, Pos))
        return {};
      return std::span<EdgeT *const>(FrozenOut.data() + FrozenOutOff[Pos],
                                     FrozenOutOff[Pos + 1] -
                                         FrozenOutOff[Pos]);
    }
    auto It = OutEdges.find(N);
    if (It == OutEdges.end())
      return {};
    return std::span<EdgeT *const>(It->second);
  }

  /// Edges entering \p N; same invalidation rule as getOutEdges.
  std::span<EdgeT *const> getInEdges(NodeT *N) const {
    if (Frozen) {
      uint32_t Pos;
      if (!frozenPosOf(N, Pos))
        return {};
      return std::span<EdgeT *const>(FrozenIn.data() + FrozenInOff[Pos],
                                     FrozenInOff[Pos + 1] -
                                         FrozenInOff[Pos]);
    }
    auto It = InEdges.find(N);
    if (It == InEdges.end())
      return {};
    return std::span<EdgeT *const>(It->second);
  }

  /// All live edges, in insertion order.
  std::vector<EdgeT *> getEdges() const {
    std::vector<EdgeT *> Out;
    Out.reserve(LiveEdges);
    for (const auto &S : Edges)
      if (!S.Dead)
        Out.push_back(const_cast<EdgeT *>(&S.E));
    return Out;
  }

  uint64_t getNumEdges() const { return LiveEdges; }
  uint64_t getNumNodes() const { return Nodes.size(); }

  /// Removes all edges between \p From and \p To (both directions when
  /// \p BothDirections). Removed edges are unlinked from the adjacency
  /// lists and tombstoned in the edge store (their memory stays owned by
  /// the graph, so stale EdgeT* held by callers never dangle).
  void removeEdgesBetween(NodeT *From, NodeT *To, bool BothDirections) {
    thaw();
    auto Match = [&](const EdgeT *E) {
      if (E->From == From && E->To == To)
        return true;
      return BothDirections && E->From == To && E->To == From;
    };
    auto Scrub = [&](std::vector<EdgeT *> &L) {
      L.erase(std::remove_if(L.begin(), L.end(), Match), L.end());
    };
    Scrub(OutEdges[From]);
    Scrub(InEdges[To]);
    if (BothDirections) {
      Scrub(OutEdges[To]);
      Scrub(InEdges[From]);
    }
    for (auto &S : Edges)
      if (!S.Dead && Match(&S.E)) {
        S.Dead = true;
        --LiveEdges;
      }
  }

  /// Connected components over the undirected view of this graph
  /// restricted to internal nodes — NOELLE's "Islands" abstraction.
  std::vector<std::set<NodeT *>> getIslands() const {
    std::vector<std::set<NodeT *>> Out;
    std::set<NodeT *> Visited;
    for (NodeT *Seed : getInternalNodes()) {
      if (Visited.count(Seed))
        continue;
      std::set<NodeT *> Island;
      std::vector<NodeT *> Work = {Seed};
      while (!Work.empty()) {
        NodeT *N = Work.back();
        Work.pop_back();
        if (!isInternal(N) || !Island.insert(N).second)
          continue;
        Visited.insert(N);
        for (const EdgeT *E : getOutEdges(N))
          Work.push_back(E->To);
        for (const EdgeT *E : getInEdges(N))
          Work.push_back(E->From);
      }
      Out.push_back(std::move(Island));
    }
    return Out;
  }

private:
  /// One stored edge plus its tombstone flag (see removeEdgesBetween).
  struct StoredEdge {
    EdgeT E;
    bool Dead;
  };

  /// Looks \p N up in the frozen node table; on success sets \p Pos to
  /// its bulkLoad position (the CSR offset index).
  bool frozenPosOf(NodeT *N, uint32_t &Pos) const {
    auto It =
        std::lower_bound(FrozenSorted.begin(), FrozenSorted.end(), N);
    if (It == FrozenSorted.end() || *It != N)
      return false;
    Pos = FrozenPosOf[It - FrozenSorted.begin()];
    return true;
  }

  /// Converts the frozen CSR adjacency into the incremental hash-map
  /// form. Called by every mutator: the CSR arrays cannot absorb edge
  /// insertions or removals, so the first mutation after a bulkLoad
  /// pays one conversion and the graph behaves as if built
  /// incrementally from then on.
  void thaw() {
    if (!Frozen)
      return;
    Frozen = false;
    const size_t N = FrozenSorted.size();
    OutEdges.reserve(N);
    InEdges.reserve(N);
    for (size_t S = 0; S < N; ++S) {
      NodeT *Node = FrozenSorted[S];
      uint32_t Pos = FrozenPosOf[S];
      if (FrozenOutOff[Pos + 1] != FrozenOutOff[Pos])
        OutEdges[Node].assign(FrozenOut.begin() + FrozenOutOff[Pos],
                              FrozenOut.begin() + FrozenOutOff[Pos + 1]);
      if (FrozenInOff[Pos + 1] != FrozenInOff[Pos])
        InEdges[Node].assign(FrozenIn.begin() + FrozenInOff[Pos],
                             FrozenIn.begin() + FrozenInOff[Pos + 1]);
    }
    FrozenSorted = {};
    FrozenPosOf = {};
    FrozenOutOff = {};
    FrozenInOff = {};
    FrozenOut = {};
    FrozenIn = {};
  }

  /// Node sets stay ordered (std::set): several consumers iterate them
  /// (SCC seeding, islands) and their order must not depend on a hash
  /// function. The adjacency tables below are only ever accessed by
  /// key, so they use hashing; the edge store is a deque for stable
  /// element addresses without one heap allocation per edge.
  std::set<NodeT *> Nodes;
  std::set<NodeT *> Internals;
  std::set<NodeT *> Externals;
  /// True after bulkLoad while every node is internal: Internals stays
  /// empty and the internal-node queries answer from Nodes, avoiding a
  /// full tree copy. Cleared (with Internals materialized) the moment
  /// an external node is added.
  bool SharedAllInternal = false;
  std::deque<StoredEdge> Edges;
  uint64_t LiveEdges = 0;
  std::unordered_map<NodeT *, std::vector<EdgeT *>> OutEdges;
  std::unordered_map<NodeT *, std::vector<EdgeT *>> InEdges;

  /// Frozen CSR adjacency, populated by bulkLoad and cleared by thaw().
  /// While Frozen, getOutEdges/getInEdges answer from these flat arrays
  /// (binary search in FrozenSorted, then an offset-table slice) and
  /// the hash maps above are empty.
  bool Frozen = false;
  std::vector<NodeT *> FrozenSorted;   ///< node pointers, sorted
  std::vector<uint32_t> FrozenPosOf;   ///< sorted index -> load position
  std::vector<uint32_t> FrozenOutOff;  ///< CSR offsets by load position
  std::vector<uint32_t> FrozenInOff;   ///< CSR offsets by load position
  std::vector<EdgeT *> FrozenOut;      ///< flat out-adjacency
  std::vector<EdgeT *> FrozenIn;       ///< flat in-adjacency
};

} // namespace noelle

#endif // NOELLE_DEPENDENCEGRAPH_H
