//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's templated dependence graph: a directed multigraph of
/// dependences between nodes of any type (the PDG instantiates it with
/// IR values; the call graph uses functions). Nodes are split into
/// internal (belonging to the code region under analysis) and external
/// (live-ins/live-outs of that region), as described in Section 2.2 of
/// the paper.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_DEPENDENCEGRAPH_H
#define NOELLE_DEPENDENCEGRAPH_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

namespace noelle {

/// Kind of a data dependence.
enum class DataDepKind {
  RAW, ///< read-after-write (true/flow)
  WAW, ///< write-after-write (output)
  WAR, ///< write-after-read (anti)
};

/// One dependence edge with the attributes the paper lists: control vs
/// data, RAW/WAW/WAR, loop-carried flag, distance, memory vs register,
/// and apparent (may) vs actual (must).
template <typename NodeT> struct DependenceEdge {
  NodeT *From = nullptr;
  NodeT *To = nullptr;
  bool IsControl = false;
  DataDepKind Kind = DataDepKind::RAW;
  bool IsMemory = false;
  bool IsLoopCarried = false;
  bool IsMust = false; ///< actual dependence; false = apparent (may)
  /// Dependence distance in iterations when known; -1 = unknown.
  int64_t Distance = -1;
};

/// A directed multigraph of dependences between NodeT values.
template <typename NodeT> class DependenceGraph {
public:
  using EdgeT = DependenceEdge<NodeT>;

  /// Registers \p N. Internal nodes belong to the analyzed region;
  /// external nodes represent its live-ins/live-outs.
  void addNode(NodeT *N, bool Internal) {
    if (Nodes.insert(N).second) {
      if (Internal)
        Internals.insert(N);
      else
        Externals.insert(N);
      return;
    }
    // Upgrading an external node to internal is allowed (e.g. when a
    // region grows); the reverse is not.
    if (Internal && Externals.count(N)) {
      Externals.erase(N);
      Internals.insert(N);
    }
  }

  bool hasNode(NodeT *N) const { return Nodes.count(N) != 0; }
  bool isInternal(NodeT *N) const { return Internals.count(N) != 0; }
  bool isExternal(NodeT *N) const { return Externals.count(N) != 0; }

  const std::set<NodeT *> &getNodes() const { return Nodes; }
  const std::set<NodeT *> &getInternalNodes() const { return Internals; }
  const std::set<NodeT *> &getExternalNodes() const { return Externals; }

  /// Adds an edge; both endpoints must already be nodes.
  EdgeT *addEdge(const EdgeT &E) {
    assert(hasNode(E.From) && hasNode(E.To) &&
           "edge endpoints must be graph nodes");
    Edges.push_back(std::make_unique<EdgeT>(E));
    EdgeT *Raw = Edges.back().get();
    OutEdges[E.From].push_back(Raw);
    InEdges[E.To].push_back(Raw);
    return Raw;
  }

  /// Convenience: register data dependence From -> To.
  EdgeT *addRegisterDep(NodeT *From, NodeT *To, DataDepKind Kind) {
    EdgeT E;
    E.From = From;
    E.To = To;
    E.Kind = Kind;
    E.IsMust = true;
    return addEdge(E);
  }

  /// Convenience: memory data dependence From -> To.
  EdgeT *addMemoryDep(NodeT *From, NodeT *To, DataDepKind Kind, bool Must) {
    EdgeT E;
    E.From = From;
    E.To = To;
    E.Kind = Kind;
    E.IsMemory = true;
    E.IsMust = Must;
    return addEdge(E);
  }

  /// Convenience: control dependence From (branch) -> To.
  EdgeT *addControlDep(NodeT *From, NodeT *To) {
    EdgeT E;
    E.From = From;
    E.To = To;
    E.IsControl = true;
    return addEdge(E);
  }

  const std::vector<EdgeT *> &getOutEdges(NodeT *N) const {
    auto It = OutEdges.find(N);
    return It == OutEdges.end() ? EmptyEdgeList : It->second;
  }

  const std::vector<EdgeT *> &getInEdges(NodeT *N) const {
    auto It = InEdges.find(N);
    return It == InEdges.end() ? EmptyEdgeList : It->second;
  }

  /// All edges, in insertion order.
  std::vector<EdgeT *> getEdges() const {
    std::vector<EdgeT *> Out;
    Out.reserve(Edges.size());
    for (const auto &E : Edges)
      Out.push_back(E.get());
    return Out;
  }

  uint64_t getNumEdges() const { return Edges.size(); }
  uint64_t getNumNodes() const { return Nodes.size(); }

  /// Removes all edges between \p From and \p To (both directions when
  /// \p BothDirections).
  void removeEdgesBetween(NodeT *From, NodeT *To, bool BothDirections) {
    auto Match = [&](const EdgeT *E) {
      if (E->From == From && E->To == To)
        return true;
      return BothDirections && E->From == To && E->To == From;
    };
    auto Scrub = [&](std::vector<EdgeT *> &L) {
      L.erase(std::remove_if(L.begin(), L.end(), Match), L.end());
    };
    Scrub(OutEdges[From]);
    Scrub(InEdges[To]);
    if (BothDirections) {
      Scrub(OutEdges[To]);
      Scrub(InEdges[From]);
    }
    Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                               [&](const std::unique_ptr<EdgeT> &E) {
                                 return Match(E.get());
                               }),
                Edges.end());
  }

  /// Connected components over the undirected view of this graph
  /// restricted to internal nodes — NOELLE's "Islands" abstraction.
  std::vector<std::set<NodeT *>> getIslands() const {
    std::vector<std::set<NodeT *>> Out;
    std::set<NodeT *> Visited;
    for (NodeT *Seed : Internals) {
      if (Visited.count(Seed))
        continue;
      std::set<NodeT *> Island;
      std::vector<NodeT *> Work = {Seed};
      while (!Work.empty()) {
        NodeT *N = Work.back();
        Work.pop_back();
        if (!Internals.count(N) || !Island.insert(N).second)
          continue;
        Visited.insert(N);
        for (const EdgeT *E : getOutEdges(N))
          Work.push_back(E->To);
        for (const EdgeT *E : getInEdges(N))
          Work.push_back(E->From);
      }
      Out.push_back(std::move(Island));
    }
    return Out;
  }

private:
  std::set<NodeT *> Nodes;
  std::set<NodeT *> Internals;
  std::set<NodeT *> Externals;
  std::vector<std::unique_ptr<EdgeT>> Edges;
  std::map<NodeT *, std::vector<EdgeT *>> OutEdges;
  std::map<NodeT *, std::vector<EdgeT *>> InEdges;
  std::vector<EdgeT *> EmptyEdgeList;
};

} // namespace noelle

#endif // NOELLE_DEPENDENCEGRAPH_H
