//===----------------------------------------------------------------------===//
///
/// \file
/// LAMP-style memory-dependence + loop-trip profiler. An interpreter
/// observer shadows every byte of memory with its last reader/writer and
/// a global access clock; a dependence that crosses an iteration
/// boundary of an active loop is recorded as a *manifested* loop-carried
/// dependence of that loop, keyed entirely by deterministic instruction
/// IDs (ir/IDs.h) so the record survives printing and parsing.
///
/// The resulting MemDepProfile is the evidence base for speculative
/// DOALL: a PDG loop-carried memory edge whose endpoint pair was never
/// observed to manifest for the loop may be speculated away, with the
/// runtime write-log/commit protocol (runtime/ParallelRuntime.h) as the
/// safety net. Profiles are serialized as content-hash-keyed module
/// metadata (noelle.memdep.v1) alongside the embedded PDG, so they
/// survive the cache and travel with the module text.
///
/// Wire format (deterministic; round trips byte-identically):
///
///   memdep v1
///   hash <16 hex digits>
///   loop header=<id> invocations=<n> iterations=<n>
///   dep header=<id> src=<id> dst=<id> kind=<raw|war|waw>
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_MEMDEPPROFILER_H
#define NOELLE_MEMDEPPROFILER_H

#include "analysis/LoopInfo.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace noelle {

/// Module metadata key the profile is embedded under.
inline constexpr const char *MemDepEmbedKey = "noelle.memdep.v1";

/// A manifested loop-carried memory dependence: during one invocation of
/// the loop identified by \p HeaderID, the access \p DstID touched a
/// byte last touched (conflictingly) by \p SrcID in an earlier
/// iteration.
struct ManifestedDep {
  uint64_t HeaderID = 0; ///< ID of the loop header's first instruction
  uint64_t SrcID = 0;    ///< earlier access
  uint64_t DstID = 0;    ///< later access
  enum Kind : uint8_t { RAW = 0, WAR = 1, WAW = 2 } K = RAW;

  bool operator<(const ManifestedDep &O) const {
    return std::tie(HeaderID, SrcID, DstID, K) <
           std::tie(O.HeaderID, O.SrcID, O.DstID, O.K);
  }
  bool operator==(const ManifestedDep &O) const {
    return HeaderID == O.HeaderID && SrcID == O.SrcID && DstID == O.DstID &&
           K == O.K;
  }
};

/// The collected profile: which loops ran (trip statistics) and which
/// loop-carried memory dependences ever manifested.
class MemDepProfile {
public:
  /// True when loop \p HeaderID was entered at least once in the
  /// profiled run — the planner's evidence gate: loops the profile never
  /// observed carry no "absence of dependences" evidence at all.
  bool coversLoop(uint64_t HeaderID) const {
    auto It = Loops.find(HeaderID);
    return It != Loops.end() && It->second.Invocations > 0;
  }

  uint64_t loopInvocations(uint64_t HeaderID) const {
    auto It = Loops.find(HeaderID);
    return It == Loops.end() ? 0 : It->second.Invocations;
  }
  uint64_t loopIterations(uint64_t HeaderID) const {
    auto It = Loops.find(HeaderID);
    return It == Loops.end() ? 0 : It->second.Iterations;
  }

  /// True when any carried dependence between the unordered instruction
  /// pair {A, B} manifested for loop \p HeaderID (any direction, any
  /// kind). The speculation legality query: an edge whose pair is absent
  /// never manifested.
  bool manifested(uint64_t HeaderID, uint64_t A, uint64_t B) const {
    return Pairs.count(key(HeaderID, A, B)) != 0;
  }

  const std::set<ManifestedDep> &deps() const { return Deps; }
  bool empty() const { return Loops.empty() && Deps.empty(); }

  /// Hash of the module the profile is bound to (0 = unbound).
  uint64_t moduleHash() const { return ModuleHash; }

  std::string serialize() const;
  static bool deserialize(const std::string &Text, MemDepProfile &Out,
                          std::string &Err);

  /// Stores the profile as module metadata, stamped with \p M's content
  /// hash. The hash is metadata-agnostic, so embedding neither
  /// invalidates the PDG cache nor the profile's own binding. Profiles
  /// are keyed by instruction IDs, so a profile collected on one module
  /// may be embedded into any module with identical structure (equal
  /// content hash modulo metadata — e.g. a re-parsed copy).
  void embed(nir::Module &M);

  /// Loads an embedded profile; fails when absent, malformed, or (with
  /// \p RequireHashMatch) bound to a different content hash. Pass false
  /// only when an outer protocol already pins staleness — the planner's
  /// apply path does: the plan's own hash was checked against the
  /// pristine module, and entries applied earlier in the same plan
  /// legitimately change the hash before a speculative entry loads the
  /// profile.
  static bool fromModule(nir::Module &M, MemDepProfile &Out,
                         std::string &Err, bool RequireHashMatch = true);

  static void clean(nir::Module &M);
  static bool isEmbedded(const nir::Module &M);

  void recordLoopEntry(uint64_t HeaderID) { ++Loops[HeaderID].Invocations; }
  void recordLoopIteration(uint64_t HeaderID) {
    ++Loops[HeaderID].Iterations;
  }
  void recordDep(const ManifestedDep &D) {
    if (Deps.insert(D).second)
      Pairs.insert(key(D.HeaderID, D.SrcID, D.DstID));
  }

private:
  static std::tuple<uint64_t, uint64_t, uint64_t>
  key(uint64_t H, uint64_t A, uint64_t B) {
    return A <= B ? std::make_tuple(H, A, B) : std::make_tuple(H, B, A);
  }

  struct LoopStats {
    uint64_t Invocations = 0;
    uint64_t Iterations = 0;
  };
  std::map<uint64_t, LoopStats> Loops;
  std::set<ManifestedDep> Deps;
  std::set<std::tuple<uint64_t, uint64_t, uint64_t>> Pairs;
  uint64_t ModuleHash = 0;
};

/// The observer. Installs byte-granular shadow memory (last reader and
/// writer with access timestamps) and a dynamic loop-activation stack
/// maintained from block events, so each access can be tested against
/// the iteration windows of every active loop. Single-threaded by
/// design: profiling runs happen before parallelization.
class MemDepProfiler : public nir::ExecutionObserver {
public:
  /// \p M must carry deterministic instruction IDs (ir/IDs.h).
  explicit MemDepProfiler(nir::Module &M);
  ~MemDepProfiler() override;

  void onBlockExecuted(const nir::BasicBlock *BB) override;
  void onCallExecuted(const nir::CallInst *Call,
                      const nir::Function *Callee) override;
  void onLoadExecuted(const nir::Instruction *I, uint64_t Addr,
                      unsigned Bytes) override;
  void onStoreExecuted(const nir::Instruction *I, uint64_t Addr,
                       unsigned Bytes) override;

  MemDepProfile takeProfile();

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Runs @main of \p M under the observer and returns the profile.
/// Assigns deterministic IDs first when the module carries none (the
/// same assignment captureForCheck/pdgEmbed would produce).
MemDepProfile profileMemDeps(nir::Module &M);

} // namespace noelle

#endif // NOELLE_MEMDEPPROFILER_H
