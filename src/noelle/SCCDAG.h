//===----------------------------------------------------------------------===//
///
/// \file
/// The augmented SCCDAG (aSCCDAG) abstraction: Tarjan's strongly connected
/// components over a loop's dependence graph, arranged as a DAG, with each
/// SCC attributed as Independent, Sequential, or Reducible (Section 2.2).
/// HELIX/DSWP/DOALL are all implemented as scheduling policies over this
/// structure.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_SCCDAG_H
#define NOELLE_SCCDAG_H

#include "noelle/PDG.h"

namespace noelle {

using nir::BinaryInst;
using nir::PhiInst;

/// One strongly connected component of a loop dependence graph.
class SCC {
public:
  enum class Attribute {
    Independent, ///< no dependence between dynamic instances
    Sequential,  ///< instances must run in iteration order
    Reducible,   ///< instances commute via a reduction operator
  };

  const std::set<Value *> &getNodes() const { return Nodes; }
  bool contains(const Value *V) const {
    return Nodes.count(const_cast<Value *>(V)) != 0;
  }

  Attribute getAttribute() const { return Attr; }

  /// True if some edge internal to this SCC is loop-carried.
  bool hasLoopCarriedDependence() const { return LoopCarried; }

  /// True if some internal loop-carried edge is a memory dependence.
  bool hasLoopCarriedMemoryDependence() const { return LoopCarriedMemory; }

  /// For Reducible SCCs: the accumulator phi and its operator.
  PhiInst *getReductionPhi() const { return ReductionPhi; }
  BinaryInst::Op getReductionOp() const { return ReductionOp; }
  /// The accumulation instruction (phi-incoming along the latch).
  BinaryInst *getReductionUpdate() const { return ReductionUpdate; }

  /// Number of instructions in this SCC.
  size_t size() const { return Nodes.size(); }

private:
  friend class SCCDAG;
  std::set<Value *> Nodes;
  Attribute Attr = Attribute::Independent;
  bool LoopCarried = false;
  bool LoopCarriedMemory = false;
  PhiInst *ReductionPhi = nullptr;
  BinaryInst *ReductionUpdate = nullptr;
  BinaryInst::Op ReductionOp = BinaryInst::Op::Add;
};

/// The DAG of SCCs of a loop dependence graph.
class SCCDAG {
public:
  /// Builds the aSCCDAG of \p L from its loop dependence graph \p LoopDG
  /// (as returned by PDGBuilder::getLoopDG).
  SCCDAG(PDG &LoopDG, nir::LoopStructure &L);

  const std::vector<std::unique_ptr<SCC>> &getSCCs() const { return SCCs; }

  /// The SCC containing \p V, or null if V is not an internal node.
  SCC *sccOf(const Value *V) const;

  /// Dependence successors of \p S in the DAG.
  const std::set<SCC *> &getSuccessors(SCC *S) const;
  const std::set<SCC *> &getPredecessors(SCC *S) const;

  /// SCCs in a topological order (dependences point forward).
  std::vector<SCC *> getTopologicalOrder() const;

  nir::LoopStructure &getLoop() const { return L; }
  PDG &getLoopDG() const { return LoopDG; }

private:
  void attribute(SCC &S);
  bool detectReduction(SCC &S);

  PDG &LoopDG;
  nir::LoopStructure &L;
  std::vector<std::unique_ptr<SCC>> SCCs;
  std::map<const Value *, SCC *> NodeToSCC;
  std::map<SCC *, std::set<SCC *>> Succs, Preds;
  std::set<SCC *> EmptySet;
};

} // namespace noelle

#endif // NOELLE_SCCDAG_H
