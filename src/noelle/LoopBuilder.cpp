#include "noelle/LoopBuilder.h"

#include "ir/Instructions.h"

#include <map>

using namespace noelle;
using nir::BranchInst;
using nir::Function;
using nir::PhiInst;
using nir::Value;

BasicBlock *LoopBuilder::getOrCreatePreheader(nir::LoopStructure &L) {
  if (BasicBlock *PH = L.getPreheader())
    return PH;

  Function *F = L.getFunction();
  BasicBlock *Header = L.getHeader();
  auto NewPH = std::make_unique<BasicBlock>(Ctx.getVoidTy(),
                                            Header->getName() + ".preheader");
  BasicBlock *PH = F->insertBlock(std::move(NewPH), Header);

  // Redirect out-of-loop predecessors to the new preheader.
  std::vector<BasicBlock *> OutsidePreds;
  for (BasicBlock *Pred : Header->predecessors())
    if (!L.contains(Pred))
      OutsidePreds.push_back(Pred);
  for (BasicBlock *Pred : OutsidePreds) {
    auto *Br = nir::cast<BranchInst>(Pred->getTerminator());
    for (unsigned S = 0; S < Br->getNumSuccessors(); ++S)
      if (Br->getSuccessor(S) == Header)
        Br->setSuccessor(S, PH);
  }

  // Merge incoming phi values from those predecessors into the header's
  // phis: the preheader contributes a new phi in PH when multiple
  // outside predecessors exist, else the single value.
  for (auto &I : Header->getInstList()) {
    auto *Phi = nir::dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    if (OutsidePreds.size() == 1) {
      int Idx = Phi->getBlockIndex(OutsidePreds[0]);
      assert(Idx >= 0);
      Phi->setIncomingBlock(static_cast<unsigned>(Idx), PH);
      continue;
    }
    auto *MergePhi = new PhiInst(Phi->getType());
    MergePhi->setName(Phi->getName() + ".ph");
    PH->push_back(std::unique_ptr<nir::Instruction>(MergePhi));
    for (BasicBlock *Pred : OutsidePreds) {
      int Idx = Phi->getBlockIndex(Pred);
      assert(Idx >= 0);
      MergePhi->addIncoming(Phi->getIncomingValue(Idx), Pred);
      Phi->removeIncoming(static_cast<unsigned>(Idx));
    }
    Phi->addIncoming(MergePhi, PH);
  }

  PH->push_back(std::make_unique<BranchInst>(Ctx.getVoidTy(), Header));
  return PH;
}

void LoopBuilder::hoistToPreheader(nir::LoopStructure &L, Instruction *I) {
  BasicBlock *PH = getOrCreatePreheader(L);
  I->moveBeforeTerminator(PH);
}

bool LoopBuilder::rotateWhileToDoWhile(nir::LoopStructure &L) {
  BasicBlock *Header = L.getHeader();
  BasicBlock *PH = L.getPreheader();
  if (!PH)
    PH = getOrCreatePreheader(L);

  // Supported shape: the header is the only exiting block, ends in a
  // conditional branch with exactly one in-loop and one out-of-loop
  // successor.
  if (L.getExitingBlocks().size() != 1 ||
      L.getExitingBlocks()[0] != Header)
    return false;
  auto *HeaderBr = nir::dyn_cast_or_null<BranchInst>(Header->getTerminator());
  if (!HeaderBr || !HeaderBr->isConditional())
    return false;
  BasicBlock *BodySucc = nullptr, *ExitSucc = nullptr;
  unsigned BodyIdx = 0;
  for (unsigned S = 0; S < 2; ++S) {
    if (L.contains(HeaderBr->getSuccessor(S))) {
      BodySucc = HeaderBr->getSuccessor(S);
      BodyIdx = S;
    } else {
      ExitSucc = HeaderBr->getSuccessor(S);
    }
  }
  if (!BodySucc || !ExitSucc || BodySucc == Header)
    return false;
  // Exit phis referencing header values other than phis would need value
  // materialization per predecessor; require none for now.
  for (auto &I : ExitSucc->getInstList()) {
    if (!nir::isa<PhiInst>(I.get()))
      break;
    return false;
  }

  // All latches must end in unconditional branches, and the header body
  // must be side-effect free (it gets duplicated); check everything
  // before mutating.
  for (BasicBlock *Latch : L.getLatches()) {
    auto *LatchBr = nir::dyn_cast_or_null<BranchInst>(Latch->getTerminator());
    if (!LatchBr || LatchBr->isConditional())
      return false;
  }
  for (auto &I : Header->getInstList()) {
    if (nir::isa<PhiInst>(I.get()) || I->isTerminator())
      continue;
    if (I->mayReadOrWriteMemory() || nir::isa<nir::CallInst>(I.get()))
      return false;
  }
  // No loop value may be live past the loop: rotation changes which
  // block reaches the exit, so register live-outs would need LCSSA phis
  // we do not introduce.
  for (BasicBlock *BB : L.getBlocks())
    for (auto &I : BB->getInstList())
      for (const auto &U : I->uses()) {
        auto *UserInst =
            nir::dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
        if (UserInst && !L.contains(UserInst))
          return false;
      }

  // Clones the header's non-phi computation with a value map and returns
  // the mapped branch condition.
  auto CloneCondInto = [&](BasicBlock *Dest,
                           std::map<const Value *, Value *> &Map) -> Value * {
    Instruction *InsertPos = Dest->getTerminator();
    for (auto &I : Header->getInstList()) {
      if (nir::isa<PhiInst>(I.get()))
        continue;
      if (I->isTerminator())
        break;
      if (I->mayReadOrWriteMemory() || nir::isa<nir::CallInst>(I.get()))
        return nullptr; // Duplicating side effects would change semantics.
      Instruction *C = I->clone();
      for (unsigned Op = 0; Op < C->getNumOperands(); ++Op) {
        auto It = Map.find(C->getOperand(Op));
        if (It != Map.end())
          C->setOperand(Op, It->second);
      }
      C->insertBefore(InsertPos);
      Map[I.get()] = C;
    }
    auto It = Map.find(HeaderBr->getCondition());
    if (It != Map.end())
      return It->second;
    // Condition computed by untouched values (e.g. invariant).
    return HeaderBr->getCondition();
  };

  // 1) Guard in the preheader.
  {
    std::map<const Value *, Value *> Map;
    for (auto &I : Header->getInstList()) {
      auto *Phi = nir::dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break;
      Map[Phi] = Phi->getIncomingValueForBlock(PH);
    }
    Value *Cond = CloneCondInto(PH, Map);
    if (!Cond)
      return false;
    auto *OldBr = nir::cast<BranchInst>(PH->getTerminator());
    BasicBlock *GuardThen = BodyIdx == 0 ? Header : ExitSucc;
    BasicBlock *GuardElse = BodyIdx == 0 ? ExitSucc : Header;
    auto *NewBr =
        new BranchInst(Ctx.getVoidTy(), Cond, GuardThen, GuardElse);
    NewBr->insertBefore(OldBr);
    OldBr->eraseFromParent();
  }

  // 2) Exit test in every latch.
  for (BasicBlock *Latch : L.getLatches()) {
    std::map<const Value *, Value *> Map;
    for (auto &I : Header->getInstList()) {
      auto *Phi = nir::dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break;
      Map[Phi] = Phi->getIncomingValueForBlock(Latch);
    }
    Value *Cond = CloneCondInto(Latch, Map);
    if (!Cond)
      return false;
    auto *OldBr = nir::cast<BranchInst>(Latch->getTerminator());
    assert(!OldBr->isConditional() &&
           "latch of a header-exiting while loop must jump unconditionally");
    BasicBlock *Then = BodyIdx == 0 ? Header : ExitSucc;
    BasicBlock *Else = BodyIdx == 0 ? ExitSucc : Header;
    auto *NewBr = new BranchInst(Ctx.getVoidTy(), Cond, Then, Else);
    NewBr->insertBefore(OldBr);
    OldBr->eraseFromParent();
  }

  // 3) The header now falls through to the body unconditionally.
  {
    auto *NewBr = new BranchInst(Ctx.getVoidTy(), BodySucc);
    NewBr->insertBefore(HeaderBr);
    HeaderBr->eraseFromParent();
  }
  return true;
}
