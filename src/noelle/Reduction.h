//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's reduction abstraction (RD): identification of reducible loop
/// variables (via the aSCCDAG attribution) plus the algebra needed to
/// privatize and merge them — identity elements and combiner emission.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_REDUCTION_H
#define NOELLE_REDUCTION_H

#include "ir/IRBuilder.h"
#include "noelle/SCCDAG.h"

namespace noelle {

/// One reducible loop variable.
struct ReductionVariable {
  SCC *TheSCC = nullptr;
  PhiInst *Phi = nullptr;          ///< accumulator phi in the header
  BinaryInst *Update = nullptr;    ///< acc = acc <op> contribution
  BinaryInst::Op Op;               ///< the associative operator
  Value *InitialValue = nullptr;   ///< accumulator value on loop entry

  /// The operator's identity element (0 for add/or/xor, 1 for mul, ...).
  Value *getIdentity(nir::Context &Ctx) const;
};

/// Enumerates the reducible variables of a loop.
class ReductionManager {
public:
  explicit ReductionManager(SCCDAG &Dag);

  const std::vector<ReductionVariable> &getReductions() const {
    return Reductions;
  }

  /// The reduction embodied by \p S, or null.
  const ReductionVariable *getReductionFor(const SCC *S) const;

  /// Emits code combining two partial accumulator values with the
  /// reduction operator at the builder's insertion point.
  static Value *emitCombine(nir::IRBuilder &B, BinaryInst::Op Op, Value *A,
                            Value *Bv);

private:
  std::vector<ReductionVariable> Reductions;
};

} // namespace noelle

#endif // NOELLE_REDUCTION_H
