//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's induction-variable abstractions (IV + IVS): SCC-based
/// detection that works on any loop shape (the paper's §4.3 contrast with
/// LLVM's do-while-only detection), identification of the governing IV,
/// and the induction-variable stepper that rewrites step values (used for
/// chunking by DOALL/HELIX).
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_INDUCTIONVARIABLES_H
#define NOELLE_INDUCTIONVARIABLES_H

#include "noelle/Invariants.h"
#include "noelle/SCCDAG.h"

namespace noelle {

using nir::BranchInst;
using nir::CmpInst;
using nir::ConstantInt;

/// One induction variable: a header phi advanced by a loop-invariant
/// step each iteration.
class InductionVariable {
public:
  PhiInst *getPhi() const { return Phi; }

  /// Value on loop entry (the preheader incoming).
  Value *getStartValue() const { return Start; }

  /// Loop-invariant per-iteration step (may be negative).
  Value *getStepValue() const { return Step; }

  /// The instruction computing phi+step along the back edge.
  BinaryInst *getStepInstruction() const { return StepInst; }

  /// True if the step is a compile-time constant.
  bool hasConstantStep() const {
    return nir::isa<ConstantInt>(Step);
  }
  int64_t getConstantStep() const {
    return nir::cast<ConstantInt>(Step)->getValue();
  }

  /// The SCC embodying this IV in the loop's aSCCDAG.
  SCC *getSCC() const { return TheSCC; }

  /// True if this IV controls the number of loop iterations.
  bool isGoverning() const { return GoverningCmp != nullptr; }

  /// For governing IVs: the exit comparison and branch.
  CmpInst *getGoverningCmp() const { return GoverningCmp; }
  BranchInst *getGoverningBranch() const { return GoverningBranch; }

  /// For governing IVs: the loop-invariant bound compared against.
  Value *getExitBound() const { return ExitBound; }

  /// True if the compared value is the phi itself (vs. the stepped
  /// value), which shifts trip-count computation by one.
  bool cmpUsesPhi() const { return CmpOnPhi; }

private:
  friend class InductionVariableManager;
  PhiInst *Phi = nullptr;
  Value *Start = nullptr;
  Value *Step = nullptr;
  BinaryInst *StepInst = nullptr;
  SCC *TheSCC = nullptr;
  CmpInst *GoverningCmp = nullptr;
  BranchInst *GoverningBranch = nullptr;
  Value *ExitBound = nullptr;
  bool CmpOnPhi = false;
};

/// Detects the induction variables of one loop from its aSCCDAG.
class InductionVariableManager {
public:
  InductionVariableManager(nir::LoopStructure &L, SCCDAG &Dag,
                           InvariantManager &Inv);

  const std::vector<std::unique_ptr<InductionVariable>> &
  getInductionVariables() const {
    return IVs;
  }

  /// The governing IV, or null if none was identified.
  InductionVariable *getGoverningIV() const { return Governing; }

  /// The IV embodied by \p Phi, or null.
  InductionVariable *getIVForPhi(const PhiInst *Phi) const;

  nir::LoopStructure &getLoop() const { return L; }

private:
  void detect();
  void findGoverning();

  nir::LoopStructure &L;
  SCCDAG &Dag;
  InvariantManager &Inv;
  std::vector<std::unique_ptr<InductionVariable>> IVs;
  InductionVariable *Governing = nullptr;
};

/// The induction-variable stepper (IVS): rewrites step values in place.
class InductionVariableStepper {
public:
  explicit InductionVariableStepper(nir::Context &Ctx) : Ctx(Ctx) {}

  /// Replaces the IV's step with \p NewStep. Callers are responsible for
  /// keeping exit conditions consistent (e.g. switching EQ exits to
  /// ordered comparisons when overshooting becomes possible).
  void setStep(InductionVariable &IV, Value *NewStep);

  /// Multiplies the IV's step by constant \p Factor.
  void scaleStep(InductionVariable &IV, int64_t Factor);

private:
  nir::Context &Ctx;
};

} // namespace noelle

#endif // NOELLE_INDUCTIONVARIABLES_H
