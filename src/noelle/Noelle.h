//===----------------------------------------------------------------------===//
///
/// \file
/// The Noelle manager: the demand-driven entry point custom tools use
/// (what noelle-load puts in memory). Abstractions are computed only when
/// requested and memoized; every request is recorded, which regenerates
/// the paper's Table 4 (abstractions used per custom tool). It also owns
/// the lifetimes of per-function analyses, fixing the LLVM function-pass
/// cache-invalidation hazard described in Section 2.2.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_NOELLE_H
#define NOELLE_NOELLE_H

#include "noelle/Abstraction.h"
#include "noelle/Architecture.h"
#include "noelle/CallGraph.h"
#include "noelle/DataFlow.h"
#include "noelle/Environment.h"
#include "noelle/Forest.h"
#include "noelle/InductionVariables.h"
#include "noelle/Invariants.h"
#include "noelle/LoopBuilder.h"
#include "noelle/PDG.h"
#include "noelle/Profiler.h"
#include "noelle/Reduction.h"
#include "noelle/SCCDAG.h"
#include "noelle/Scheduler.h"

#include <memory>
#include <span>
#include <unordered_map>

namespace noelle {

namespace planner {
class Planner;
}

/// The "L" abstraction: one loop bundled with its dependence graph,
/// aSCCDAG, invariants, induction variables, reductions, and environment
/// — everything Table 1 lists for "Loop (L)".
class LoopContent {
public:
  LoopContent(nir::LoopStructure &LS, PDGBuilder &Builder);

  nir::LoopStructure &getLoopStructure() const { return LS; }
  PDG &getLoopDG() const { return *LoopDG; }
  SCCDAG &getSCCDAG() const { return *Dag; }
  InvariantManager &getInvariantManager() const { return *Inv; }
  InductionVariableManager &getIVManager() const { return *IVs; }
  ReductionManager &getReductionManager() const { return *Reds; }
  Environment &getEnvironment() const { return *Env; }

private:
  nir::LoopStructure &LS;
  std::unique_ptr<PDG> LoopDG;
  std::unique_ptr<SCCDAG> Dag;
  std::unique_ptr<InvariantManager> Inv;
  std::unique_ptr<InductionVariableManager> IVs;
  std::unique_ptr<ReductionManager> Reds;
  std::unique_ptr<Environment> Env;
};

struct NoelleOptions {
  PDGBuildOptions PDGOptions;
  double MinimumLoopHotness = 0.0; ///< filter for getLoopContents
  bool MeasureArchitecture = false;
};

/// Demand-driven facade over all abstractions for one module.
class Noelle {
public:
  explicit Noelle(nir::Module &M, NoelleOptions Opts = {});
  ~Noelle();

  nir::Module &getModule() const { return M; }

  /// Whole-program PDG (Table 1: PDG).
  PDG &getPDG();

  /// Refines the whole-program PDG's loop-carried flags against every
  /// natural loop (innermost enclosing loop wins). See
  /// PDGBuilder::refineAllLoopCarried.
  void refinePDGLoopCarried();

  /// Complete call graph (Table 1: CG).
  CallGraph &getCallGraph();

  /// All loops of the program as L bundles, outermost first, filtered by
  /// hotness when a profile is available and MinimumLoopHotness is set.
  /// The view stays valid until the next invalidation; it is a window
  /// into Noelle-owned storage, not a copy.
  std::span<LoopContent *const> getLoopContents();

  /// The loop-nesting forest over the module's loops (Table 1: FR).
  Forest<LoopContent> &getLoopForest();

  /// The data-flow engine (Table 1: DFE).
  DataFlowEngine &getDataFlowEngine();

  /// Embedded or freshly collected profiles (Table 1: PRO). Returns null
  /// if the module has no embedded profile and \p CollectIfMissing is
  /// false.
  ProfileData *getProfiles(bool CollectIfMissing = false);

  /// Architecture description (Table 1: AR).
  Architecture &getArchitecture();

  /// Loop builder (Table 1: LB) and schedulers (SCD).
  LoopBuilder &getLoopBuilder();
  Scheduler getScheduler(nir::Function &F);

  /// The strategy planner (src/planner) bound to this module, with
  /// default options. Build a planner::Planner directly for custom
  /// options; this accessor exists so one-shot drivers need only the
  /// facade.
  planner::Planner &getPlanner();

  /// Per-function analyses with NOELLE-owned lifetime.
  nir::DominatorTree &getDominators(nir::Function &F);
  nir::LoopInfo &getLoopInfo(nir::Function &F);

  /// Which abstractions have been requested so far (Table 4's columns).
  const AbstractionSet &getRequestedAbstractions() const {
    return Requested;
  }
  void resetRequestTracking() { Requested.clear(); }

  /// Records a request explicitly (used by abstractions reached without
  /// a getter, e.g. ENV/T inside parallelizer codegen).
  void noteRequest(Abstraction A) { Requested.insert(A); }

  /// Drops the cached analyses of one mutated function — its dominator
  /// tree, loop info, function DG, and loop bundles — plus every
  /// whole-program structure (the PDG, its alias analyses, the loop
  /// forest). Bundles of untouched functions survive; transforms call
  /// this for each function they changed. Note the surviving loop DGs
  /// keep dependences computed with pre-mutation interprocedural
  /// aliasing — sound for the IR they describe since memory dependence
  /// edges only ever get disproved, never created, by other functions'
  /// local changes.
  void invalidate(nir::Function &F);

  /// Drops every cached analysis (use after module-shape changes such as
  /// function insertion or deletion).
  void invalidateAll();

private:
  nir::Module &M;
  NoelleOptions Opts;

  std::unique_ptr<PDGBuilder> Builder;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<nir::AndersenAliasAnalysis> CGPointsTo;
  /// L bundles per function; presence of a (possibly empty) entry means
  /// the function's loops were discovered.
  std::unordered_map<nir::Function *,
                     std::vector<std::unique_ptr<LoopContent>>>
      LoopsByFn;
  /// Hotness-filtered bundles in module order (the getLoopContents view).
  std::vector<LoopContent *> LoopOrder;
  bool LoopOrderValid = false;
  std::unique_ptr<Forest<LoopContent>> LoopForest;
  DataFlowEngine DFE;
  std::unique_ptr<ProfileData> Profiles;
  bool ProfilesLoaded = false;
  std::unique_ptr<Architecture> Arch;
  std::unique_ptr<LoopBuilder> LB;
  std::unique_ptr<planner::Planner> ThePlanner;
  std::unordered_map<nir::Function *, std::unique_ptr<nir::DominatorTree>>
      DTs;
  std::unordered_map<nir::Function *, std::unique_ptr<nir::LoopInfo>> LIs;
  std::unordered_map<nir::Function *, std::unique_ptr<PDG>> FnDGs;

  AbstractionSet Requested;

public:
  /// Function-level dependence graph, memoized (used by schedulers).
  PDG &getFunctionDG(nir::Function &F);
};

} // namespace noelle

#endif // NOELLE_NOELLE_H
