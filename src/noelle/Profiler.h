//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's profiler abstraction (PRO): instruction/branch/loop/function
/// profilers driven by interpreter observation, profile embedding into IR
/// metadata (noelle-meta-prof-embed), and high-level hotness queries.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_PROFILER_H
#define NOELLE_PROFILER_H

#include "analysis/LoopInfo.h"
#include "interp/Interpreter.h"
#include "ir/Module.h"

#include <map>

namespace noelle {

using nir::BasicBlock;
using nir::BranchInst;
using nir::Function;
using nir::Module;

/// Collected execution statistics with high-level queries.
class ProfileData {
public:
  /// Executions of a block. Zero when never observed.
  uint64_t getBlockCount(const BasicBlock *BB) const;

  /// Times the branch took successor \p Idx.
  uint64_t getBranchTakenCount(const BranchInst *Br, unsigned Idx) const;

  /// Invocations of a function.
  uint64_t getFunctionInvocations(const Function *F) const;

  /// Total dynamic instructions observed.
  uint64_t getTotalInstructions() const { return TotalInstructions; }

  /// Fraction of all executed instructions spent inside loop \p L — the
  /// paper's "hotness of a code region".
  double getLoopHotness(const nir::LoopStructure &L) const;

  /// Fraction of all executed instructions spent in \p F.
  double getFunctionHotness(const Function &F) const;

  /// Total iterations of \p L (header executions minus invocations).
  uint64_t getLoopTotalIterations(const nir::LoopStructure &L) const;

  /// Times the loop was entered from outside.
  uint64_t getLoopInvocations(const nir::LoopStructure &L) const;

  /// Average iterations per invocation (0 when never invoked).
  double getLoopAverageIterations(const nir::LoopStructure &L) const;

  /// Writes the profile into IR metadata so it survives print/parse.
  void embed(Module &M) const;

  /// Reconstructs a profile previously embedded in \p M's metadata.
  static ProfileData fromMetadata(Module &M);

  /// Removes embedded profile metadata (noelle-meta-clean).
  static void clean(Module &M);

  /// True if \p M carries an embedded profile.
  static bool isEmbedded(const Module &M);

private:
  friend class Profiler;
  std::map<const BasicBlock *, uint64_t> BlockCounts;
  std::map<const BranchInst *, std::pair<uint64_t, uint64_t>> BranchCounts;
  std::map<const Function *, uint64_t> FnInvocations;
  uint64_t TotalInstructions = 0;
};

/// Observes an ExecutionEngine run and accumulates ProfileData —
/// noelle-prof-coverage's engine. Thread-compatible with single-threaded
/// profiling runs (profile collection happens before parallelization).
class Profiler : public nir::ExecutionObserver {
public:
  void onBlockExecuted(const BasicBlock *BB) override;
  void onBranchExecuted(const BranchInst *Br, unsigned Taken) override;
  void onCallExecuted(const nir::CallInst *Call,
                      const Function *Callee) override;

  /// Runs @main of \p M under profiling and returns the collected data.
  static ProfileData profileModule(Module &M);

  ProfileData takeData();

private:
  ProfileData Data;
  /// Last-entry caches: dynamic block/branch streams are dominated by
  /// tight loops re-hitting the same few keys, so one pointer compare
  /// usually replaces the map walk.
  const BasicBlock *LastBlock = nullptr;
  uint64_t *LastBlockCount = nullptr;
  const BranchInst *LastBranch = nullptr;
  std::pair<uint64_t, uint64_t> *LastBranchCounts = nullptr;
};

} // namespace noelle

#endif // NOELLE_PROFILER_H
