//===----------------------------------------------------------------------===//
///
/// \file
/// The typed catalog of NOELLE abstractions (Table 1 / Table 4 of the
/// paper) and a small bitset for tracking which ones a tool requested.
/// Replaces the earlier string-keyed tracking: requests are now checked
/// at compile time, and the Table 4 regeneration maps each enumerator
/// back to its paper name through one function.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_ABSTRACTION_H
#define NOELLE_ABSTRACTION_H

#include <cstdint>
#include <set>
#include <string>

namespace noelle {

/// Every abstraction a custom tool can request, in Table 4 column order.
enum class Abstraction : uint8_t {
  PDG,     ///< program dependence graph
  aSCCDAG, ///< SCCDAG with attributed SCCs
  CG,      ///< complete call graph
  ENV,     ///< loop environment (live-ins / live-outs)
  T,       ///< task abstraction of the parallelizers
  DFE,     ///< data-flow engine
  PRO,     ///< profiles
  SCD,     ///< schedulers
  L,       ///< loop content bundle
  LB,      ///< loop builder
  IV,      ///< induction variables
  IVS,     ///< induction-variable stepping
  INV,     ///< loop invariants
  FR,      ///< loop-nesting forest
  ISL,     ///< integer-set library dependence refinement
  RD,      ///< reductions
  AR,      ///< architecture description
  LS,      ///< loop structure
};

inline constexpr unsigned NumAbstractions =
    static_cast<unsigned>(Abstraction::LS) + 1;

/// The paper's name for \p A — the single point where enumerators map to
/// the strings Table 4 prints.
inline const char *abstractionName(Abstraction A) {
  switch (A) {
  case Abstraction::PDG:
    return "PDG";
  case Abstraction::aSCCDAG:
    return "aSCCDAG";
  case Abstraction::CG:
    return "CG";
  case Abstraction::ENV:
    return "ENV";
  case Abstraction::T:
    return "T";
  case Abstraction::DFE:
    return "DFE";
  case Abstraction::PRO:
    return "PRO";
  case Abstraction::SCD:
    return "SCD";
  case Abstraction::L:
    return "L";
  case Abstraction::LB:
    return "LB";
  case Abstraction::IV:
    return "IV";
  case Abstraction::IVS:
    return "IVS";
  case Abstraction::INV:
    return "INV";
  case Abstraction::FR:
    return "FR";
  case Abstraction::ISL:
    return "ISL";
  case Abstraction::RD:
    return "RD";
  case Abstraction::AR:
    return "AR";
  case Abstraction::LS:
    return "LS";
  }
  return "?";
}

/// A set of abstractions, stored as one word.
class AbstractionSet {
public:
  void insert(Abstraction A) { Bits |= bit(A); }
  bool contains(Abstraction A) const { return Bits & bit(A); }
  bool empty() const { return Bits == 0; }
  void clear() { Bits = 0; }

  unsigned size() const {
    unsigned N = 0;
    for (uint32_t B = Bits; B; B &= B - 1)
      ++N;
    return N;
  }

  /// The members' paper names, sorted — the shape Table 4 and the
  /// examples print.
  std::set<std::string> names() const {
    std::set<std::string> Out;
    for (unsigned I = 0; I < NumAbstractions; ++I)
      if (Bits & (1u << I))
        Out.insert(abstractionName(static_cast<Abstraction>(I)));
    return Out;
  }

private:
  static uint32_t bit(Abstraction A) {
    return 1u << static_cast<unsigned>(A);
  }
  uint32_t Bits = 0;
};

} // namespace noelle

#endif // NOELLE_ABSTRACTION_H
