#include "noelle/InductionVariables.h"

#include "ir/Instructions.h"

using namespace noelle;
using nir::BasicBlock;
using nir::Instruction;

InductionVariableManager::InductionVariableManager(nir::LoopStructure &L,
                                                   SCCDAG &Dag,
                                                   InvariantManager &Inv)
    : L(L), Dag(Dag), Inv(Inv) {
  detect();
  findGoverning();
}

void InductionVariableManager::detect() {
  // An IV is embodied by a cross-iteration data cycle of the aSCCDAG: a
  // header phi advanced by add/sub of loop-invariant amounts. The SCC
  // containing the phi may also hold the exit compare/branch (control
  // dependences close that cycle); we trace the *data* cycle through the
  // phi directly, which is how NOELLE sees through loop shape.
  for (const auto &IPtr : L.getHeader()->getInstList()) {
    auto *Phi = nir::dyn_cast<PhiInst>(IPtr.get());
    if (!Phi)
      break;
    if (!Phi->getType()->isInteger())
      continue;

    // Each in-loop incoming must be add/sub(phi, invariant).
    Value *Step = nullptr;
    BinaryInst *StepInst = nullptr;
    bool Bad = false;
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
      if (!L.contains(Phi->getIncomingBlock(K)))
        continue;
      auto *B = nir::dyn_cast<BinaryInst>(Phi->getIncomingValue(K));
      if (!B || !L.contains(B) ||
          (B->getOp() != BinaryInst::Op::Add &&
           B->getOp() != BinaryInst::Op::Sub)) {
        Bad = true;
        break;
      }
      Value *Other = nullptr;
      if (B->getLHS() == Phi)
        Other = B->getRHS();
      else if (B->getRHS() == Phi && B->getOp() == BinaryInst::Op::Add)
        Other = B->getLHS();
      else {
        Bad = true;
        break;
      }
      if (!Inv.isLoopInvariant(Other)) {
        Bad = true;
        break;
      }
      if (StepInst && StepInst != B) {
        Bad = true; // Different updates per latch: not a simple IV.
        break;
      }
      StepInst = B;
      Step = Other;
    }
    if (Bad || !StepInst || !Step)
      continue;

    auto IV = std::make_unique<InductionVariable>();
    IV->Phi = Phi;
    IV->StepInst = StepInst;
    IV->TheSCC = Dag.sccOf(Phi);
    // Negative direction for sub-steps with constant amounts.
    if (StepInst->getOp() == BinaryInst::Op::Sub) {
      if (auto *C = nir::dyn_cast<ConstantInt>(Step))
        Step = L.getFunction()
                   ->getParent()
                   ->getContext()
                   .getConstantInt(C->getType(), -C->getValue());
      else
        continue; // Non-constant subtractive step: skip for simplicity.
    }
    IV->Step = Step;
    for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
      if (!L.contains(Phi->getIncomingBlock(K)))
        IV->Start = Phi->getIncomingValue(K);
    if (!IV->Start)
      continue;
    IVs.push_back(std::move(IV));
  }
}

void InductionVariableManager::findGoverning() {
  // A governing IV controls a loop exit: some exiting block's branch
  // condition compares the IV (phi or stepped value) against a
  // loop-invariant bound. Works for while loops (header exit) and
  // do-while loops (latch exit) alike.
  for (auto &IV : IVs) {
    for (BasicBlock *Exiting : L.getExitingBlocks()) {
      auto *Br = nir::dyn_cast_or_null<BranchInst>(Exiting->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      auto *Cmp = nir::dyn_cast<CmpInst>(Br->getCondition());
      if (!Cmp)
        continue;
      auto MatchSide = [&](Value *Side, Value *Other) -> bool {
        bool IsIVExpr = Side == IV->Phi || Side == IV->StepInst;
        if (!IsIVExpr)
          return false;
        if (!Inv.isLoopInvariant(Other))
          return false;
        IV->GoverningCmp = Cmp;
        IV->GoverningBranch = Br;
        IV->ExitBound = Other;
        IV->CmpOnPhi = Side == IV->Phi;
        return true;
      };
      if (MatchSide(Cmp->getLHS(), Cmp->getRHS()) ||
          MatchSide(Cmp->getRHS(), Cmp->getLHS())) {
        if (!Governing)
          Governing = IV.get();
        break;
      }
    }
  }
}

InductionVariable *
InductionVariableManager::getIVForPhi(const PhiInst *Phi) const {
  for (const auto &IV : IVs)
    if (IV->getPhi() == Phi)
      return IV.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Stepper
//===----------------------------------------------------------------------===//

void InductionVariableStepper::setStep(InductionVariable &IV,
                                       Value *NewStep) {
  BinaryInst *Upd = IV.getStepInstruction();
  // Normalize sub-steps to add form first so the replacement is uniform.
  assert(Upd && "IV has no step instruction");
  if (Upd->getLHS() == IV.getPhi())
    Upd->setOperand(1, NewStep);
  else
    Upd->setOperand(0, NewStep);
}

void InductionVariableStepper::scaleStep(InductionVariable &IV,
                                         int64_t Factor) {
  assert(IV.hasConstantStep() && "scaleStep requires a constant step");
  int64_t NewStep = IV.getConstantStep() * Factor;
  BinaryInst *Upd = IV.getStepInstruction();
  if (Upd->getOp() == BinaryInst::Op::Sub)
    NewStep = -NewStep;
  setStep(IV, Ctx.getConstantInt(IV.getPhi()->getType(), NewStep));
}
