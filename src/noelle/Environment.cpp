#include "noelle/Environment.h"

#include "ir/Instructions.h"

#include <algorithm>

using namespace noelle;
using nir::Instruction;

Environment::Environment(nir::LoopStructure &L) {
  std::set<Value *> SeenIn;
  std::set<Instruction *> SeenOut;

  for (auto *BB : L.getBlocks()) {
    for (const auto &I : BB->getInstList()) {
      // Live-ins: operands defined outside the loop that carry values
      // (constants and globals are materializable anywhere and need no
      // marshalling; arguments and outside instructions do).
      for (Value *Op : I->operands()) {
        bool IsCandidate = nir::isa<nir::Argument>(Op);
        if (auto *OpI = nir::dyn_cast<Instruction>(Op))
          IsCandidate = !L.contains(OpI);
        if (IsCandidate && SeenIn.insert(Op).second)
          LiveIns.push_back(Op);
      }
      // Live-outs: this instruction used outside the loop.
      if (I->getType()->isVoid())
        continue;
      for (const auto &U : I->uses()) {
        auto *UserInst = nir::dyn_cast<Instruction>(
            static_cast<Value *>(U.TheUser));
        if (UserInst && !L.contains(UserInst)) {
          if (SeenOut.insert(I.get()).second)
            LiveOuts.push_back(I.get());
          break;
        }
      }
    }
  }
}

int Environment::indexOfLiveIn(const Value *V) const {
  auto It = std::find(LiveIns.begin(), LiveIns.end(), V);
  return It == LiveIns.end() ? -1
                             : static_cast<int>(It - LiveIns.begin());
}

int Environment::indexOfLiveOut(const Instruction *I) const {
  auto It = std::find(LiveOuts.begin(), LiveOuts.end(), I);
  return It == LiveOuts.end() ? -1
                              : static_cast<int>(It - LiveOuts.begin());
}
