#include "noelle/DataFlow.h"

#include "analysis/CFG.h"
#include "ir/Instructions.h"

#include <algorithm>

using namespace noelle;
using nir::PhiInst;

DataFlowResult::DataFlowResult(std::vector<Value *> Universe)
    : Universe(std::move(Universe)) {
  for (unsigned I = 0; I < this->Universe.size(); ++I)
    Index[this->Universe[I]] = I;
}

unsigned DataFlowResult::indexOf(const Value *V) const {
  auto It = Index.find(V);
  assert(It != Index.end() && "value not in data-flow universe");
  return It->second;
}

std::vector<Value *> DataFlowResult::outValues(const Instruction *I) const {
  std::vector<Value *> Result;
  out(I).forEachSetBit([&](unsigned Idx) { Result.push_back(Universe[Idx]); });
  return Result;
}

std::vector<Value *> DataFlowResult::inValues(const Instruction *I) const {
  std::vector<Value *> Result;
  in(I).forEachSetBit([&](unsigned Idx) { Result.push_back(Universe[Idx]); });
  return Result;
}

std::unique_ptr<DataFlowResult>
DataFlowEngine::solve(Function &F, const DataFlowProblem &P) const {
  auto R = std::make_unique<DataFlowResult>(P.Universe);
  const unsigned N = static_cast<unsigned>(P.Universe.size());

  // Precompute per-instruction GEN/KILL and per-block summaries.
  std::map<const Instruction *, BitVector> Gen, Kill;
  std::map<const BasicBlock *, BitVector> BlockGen, BlockKill;
  for (const auto &BB : F.getBlocks()) {
    BitVector BG(N), BK(N);
    // Forward: compose first-to-last; backward: last-to-first.
    std::vector<const Instruction *> Insts;
    for (const auto &I : BB->getInstList())
      Insts.push_back(I.get());
    if (!P.Forward)
      std::reverse(Insts.begin(), Insts.end());
    for (const Instruction *I : Insts) {
      BitVector G(N), K(N);
      P.Transfer(I, *R, G, K);
      Gen[I] = G;
      Kill[I] = K;
      // block = gen U (old \ kill)
      BG.subtract(K);
      BG.unionWith(G);
      BK.unionWith(K);
    }
    BlockGen[BB.get()] = BG;
    BlockKill[BB.get()] = BK;
  }

  // Block-level fixpoint with an RPO-priority worklist.
  std::map<const BasicBlock *, BitVector> BlockIn, BlockOut;
  BitVector Boundary(N, P.BoundaryAllOnes);
  BitVector Init(N, !P.MeetIsUnion); // union: start empty; intersect: full
  for (const auto &BB : F.getBlocks()) {
    BlockIn[BB.get()] = Init;
    BlockOut[BB.get()] = Init;
  }

  auto Order = nir::reversePostOrder(F);
  if (!P.Forward)
    std::reverse(Order.begin(), Order.end());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Order) {
      // Meet over neighbors.
      std::vector<BasicBlock *> Ns =
          P.Forward ? BB->predecessors() : BB->successors();
      BitVector MeetV(N, !P.MeetIsUnion);
      bool Any = false;
      for (BasicBlock *Nb : Ns) {
        const BitVector &NbOut = P.Forward ? BlockOut[Nb] : BlockIn[Nb];
        if (!Any) {
          MeetV = NbOut;
          Any = true;
        } else if (P.MeetIsUnion) {
          MeetV.unionWith(NbOut);
        } else {
          MeetV.intersectWith(NbOut);
        }
      }
      if (!Any)
        MeetV = Boundary;

      BitVector NewOut = MeetV;
      NewOut.subtract(BlockKill[BB]);
      NewOut.unionWith(BlockGen[BB]);

      if (P.Forward) {
        if (BlockIn[BB] != MeetV || BlockOut[BB] != NewOut) {
          BlockIn[BB] = MeetV;
          BlockOut[BB] = NewOut;
          Changed = true;
        }
      } else {
        if (BlockOut[BB] != MeetV || BlockIn[BB] != NewOut) {
          BlockOut[BB] = MeetV;
          BlockIn[BB] = NewOut;
          Changed = true;
        }
      }
    }
  }

  // Instruction-level results within each block.
  for (const auto &BB : F.getBlocks()) {
    if (P.Forward) {
      BitVector Cur = BlockIn[BB.get()];
      for (const auto &I : BB->getInstList()) {
        R->IN[I.get()] = Cur;
        Cur.subtract(Kill[I.get()]);
        Cur.unionWith(Gen[I.get()]);
        R->OUT[I.get()] = Cur;
      }
    } else {
      BitVector Cur = BlockOut[BB.get()];
      std::vector<const Instruction *> Insts;
      for (const auto &I : BB->getInstList())
        Insts.push_back(I.get());
      std::reverse(Insts.begin(), Insts.end());
      for (const Instruction *I : Insts) {
        R->OUT[I] = Cur;
        Cur.subtract(Kill[I]);
        Cur.unionWith(Gen[I]);
        R->IN[I] = Cur;
      }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Stock analyses
//===----------------------------------------------------------------------===//

std::unique_ptr<DataFlowResult> noelle::computeLiveness(Function &F) {
  DataFlowProblem P;
  P.Forward = false;
  P.MeetIsUnion = true;
  for (unsigned I = 0; I < F.getNumArgs(); ++I)
    P.Universe.push_back(F.getArg(I));
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (!I->getType()->isVoid())
        P.Universe.push_back(I.get());

  P.Transfer = [](const Instruction *I, const DataFlowResult &R,
                  BitVector &Gen, BitVector &Kill) {
    // Uses generate liveness; the definition kills it. Phi uses are
    // treated as live at the phi (block-edge precision is not needed by
    // our clients).
    for (const Value *Op : I->operands())
      if (R.hasIndex(Op))
        Gen.set(R.indexOf(Op));
    if (R.hasIndex(I))
      Kill.set(R.indexOf(I));
  };
  return DataFlowEngine().solve(F, P);
}

std::unique_ptr<DataFlowResult>
noelle::computeReachingDefinitions(Function &F) {
  DataFlowProblem P;
  P.Forward = true;
  P.MeetIsUnion = true;
  for (const auto &BB : F.getBlocks())
    for (const auto &I : BB->getInstList())
      if (nir::isa<nir::StoreInst>(I.get()) ||
          nir::isa<nir::CallInst>(I.get()))
        P.Universe.push_back(I.get());

  P.Transfer = [](const Instruction *I, const DataFlowResult &R,
                  BitVector &Gen, BitVector &Kill) {
    if (R.hasIndex(I))
      Gen.set(R.indexOf(I));
    // Without must-alias kill sets this is the may-reach variant; a
    // store kills nothing conservatively.
  };
  return DataFlowEngine().solve(F, P);
}
