#include "noelle/SCCDAG.h"

#include "ir/Instructions.h"

#include <algorithm>
#include <functional>

using namespace noelle;
using nir::Instruction;

SCCDAG::SCCDAG(PDG &LoopDG, nir::LoopStructure &L) : LoopDG(LoopDG), L(L) {
  // Tarjan's algorithm over the loop's internal nodes, following only
  // edges between internal nodes.
  struct TarjanState {
    int Index = -1;
    int LowLink = 0;
    bool OnStack = false;
  };
  std::map<Value *, TarjanState> State;
  std::vector<Value *> Stack;
  int NextIndex = 0;

  std::function<void(Value *)> StrongConnect = [&](Value *V) {
    TarjanState &S = State[V];
    S.Index = S.LowLink = NextIndex++;
    S.OnStack = true;
    Stack.push_back(V);

    for (const auto *E : LoopDG.getOutEdges(V)) {
      Value *W = E->To;
      if (!LoopDG.isInternal(W))
        continue;
      TarjanState &SW = State[W];
      if (SW.Index < 0) {
        StrongConnect(W);
        S.LowLink = std::min(S.LowLink, State[W].LowLink);
      } else if (SW.OnStack) {
        S.LowLink = std::min(S.LowLink, SW.Index);
      }
    }

    if (S.LowLink == S.Index) {
      auto NewSCC = std::make_unique<SCC>();
      for (;;) {
        Value *W = Stack.back();
        Stack.pop_back();
        State[W].OnStack = false;
        NewSCC->Nodes.insert(W);
        NodeToSCC[W] = NewSCC.get();
        if (W == V)
          break;
      }
      SCCs.push_back(std::move(NewSCC));
    }
  };

  // Seed Tarjan in program order (loop blocks in layout order,
  // instructions in block order) so SCC discovery order — and every
  // order derived from it (getSCCs, the topological tie-breaks) — is
  // independent of heap layout. getInternalNodes() is pointer-ordered,
  // so seeding from it directly makes the stage partition of DSWP (and
  // anything else consuming the topological order) vary between
  // otherwise identical runs.
  for (nir::BasicBlock *BB : L.getBlocks())
    for (const auto &I : BB->getInstList())
      if (LoopDG.isInternal(I.get()) && State[I.get()].Index < 0)
        StrongConnect(I.get());
  for (Value *V : LoopDG.getInternalNodes())
    if (State[V].Index < 0)
      StrongConnect(V);

  // DAG edges between SCCs.
  for (const auto *E : LoopDG.getEdges()) {
    auto FromIt = NodeToSCC.find(E->From);
    auto ToIt = NodeToSCC.find(E->To);
    if (FromIt == NodeToSCC.end() || ToIt == NodeToSCC.end())
      continue;
    if (FromIt->second == ToIt->second)
      continue;
    Succs[FromIt->second].insert(ToIt->second);
    Preds[ToIt->second].insert(FromIt->second);
  }

  for (auto &S : SCCs)
    attribute(*S);
}

SCC *SCCDAG::sccOf(const Value *V) const {
  auto It = NodeToSCC.find(const_cast<Value *>(V));
  return It == NodeToSCC.end() ? nullptr : It->second;
}

const std::set<SCC *> &SCCDAG::getSuccessors(SCC *S) const {
  auto It = Succs.find(S);
  return It == Succs.end() ? EmptySet : It->second;
}

const std::set<SCC *> &SCCDAG::getPredecessors(SCC *S) const {
  auto It = Preds.find(S);
  return It == Preds.end() ? EmptySet : It->second;
}

std::vector<SCC *> SCCDAG::getTopologicalOrder() const {
  // Ties are broken by discovery order (the SCCs vector), which the
  // constructor makes deterministic; predecessor sets are pointer-ordered
  // and must not drive the visit order.
  std::map<SCC *, unsigned> DiscoveryIdx;
  for (unsigned I = 0; I < SCCs.size(); ++I)
    DiscoveryIdx[SCCs[I].get()] = I;

  std::vector<SCC *> Order;
  std::set<SCC *> Visited;
  std::function<void(SCC *)> Visit = [&](SCC *S) {
    if (!Visited.insert(S).second)
      return;
    std::vector<SCC *> Preds(getPredecessors(S).begin(),
                             getPredecessors(S).end());
    std::sort(Preds.begin(), Preds.end(), [&](SCC *A, SCC *B) {
      return DiscoveryIdx[A] < DiscoveryIdx[B];
    });
    for (SCC *P : Preds)
      Visit(P);
    Order.push_back(S);
  };
  for (const auto &S : SCCs)
    Visit(S.get());
  return Order;
}

void SCCDAG::attribute(SCC &S) {
  // Internal loop-carried edges decide the category.
  for (Value *V : S.Nodes)
    for (const auto *E : LoopDG.getOutEdges(V)) {
      if (!S.Nodes.count(E->To))
        continue;
      if (E->IsLoopCarried) {
        S.LoopCarried = true;
        if (E->IsMemory)
          S.LoopCarriedMemory = true;
      }
    }

  if (!S.LoopCarried) {
    S.Attr = SCC::Attribute::Independent;
    return;
  }
  if (detectReduction(S)) {
    S.Attr = SCC::Attribute::Reducible;
    return;
  }
  S.Attr = SCC::Attribute::Sequential;
}

bool SCCDAG::detectReduction(SCC &S) {
  // A reducible SCC matches the classic accumulation pattern:
  //   header:  acc = phi [init, preheader], [upd, latch]
  //   body:    upd = acc <associative-op> contribution
  // with the contribution computed outside the SCC and no memory edges
  // carried around the back edge.
  if (S.LoopCarriedMemory)
    return false;

  PhiInst *AccPhi = nullptr;
  for (Value *V : S.Nodes) {
    auto *Phi = nir::dyn_cast<PhiInst>(V);
    if (!Phi)
      continue;
    if (Phi->getParent() != L.getHeader())
      return false; // Cycles through non-header phis are not reductions.
    if (AccPhi)
      return false; // Multiple accumulators in one SCC: bail.
    AccPhi = Phi;
  }
  if (!AccPhi)
    return false;

  // The in-loop incoming value must be an associative binop of the phi.
  BinaryInst *Update = nullptr;
  for (unsigned K = 0; K < AccPhi->getNumIncoming(); ++K) {
    if (!L.contains(AccPhi->getIncomingBlock(K)))
      continue;
    auto *B = nir::dyn_cast<BinaryInst>(AccPhi->getIncomingValue(K));
    if (!B || !B->isAssociative() || !S.Nodes.count(B))
      return false;
    if (Update && Update != B)
      return false;
    Update = B;
  }
  if (!Update)
    return false;

  // Exactly one operand chain links back to the phi; the other is the
  // per-iteration contribution from outside the SCC.
  Value *Contribution = nullptr;
  if (Update->getLHS() == AccPhi)
    Contribution = Update->getRHS();
  else if (Update->getRHS() == AccPhi)
    Contribution = Update->getLHS();
  else
    return false;
  if (S.Nodes.count(Contribution))
    return false;

  // All other SCC members must be on the phi-update cycle only. Allow
  // the minimal {phi, update} pair; anything extra means side uses we
  // cannot reduce.
  for (Value *V : S.Nodes)
    if (V != AccPhi && V != Update)
      return false;

  // Every operation crossing iterations must be this associative op; the
  // phi may not feed anything else *inside* the SCC (uses outside the
  // loop read the final value and are fine; uses inside the loop outside
  // the SCC would observe intermediate sums, which reduction reordering
  // would break).
  for (const auto &U : AccPhi->uses()) {
    auto *UserInst = nir::dyn_cast<Instruction>(
        static_cast<Value *>(U.TheUser));
    if (!UserInst)
      continue;
    if (UserInst == Update)
      continue;
    if (L.contains(UserInst))
      return false;
  }
  for (const auto &U : Update->uses()) {
    auto *UserInst = nir::dyn_cast<Instruction>(
        static_cast<Value *>(U.TheUser));
    if (!UserInst)
      continue;
    if (UserInst == AccPhi)
      continue;
    if (L.contains(UserInst))
      return false;
  }

  S.ReductionPhi = AccPhi;
  S.ReductionUpdate = Update;
  S.ReductionOp = Update->getOp();
  return true;
}
