#include "noelle/Reduction.h"

using namespace noelle;
using nir::Context;

Value *ReductionVariable::getIdentity(Context &Ctx) const {
  nir::Type *Ty = Phi->getType();
  switch (Op) {
  case BinaryInst::Op::Add:
  case BinaryInst::Op::Or:
  case BinaryInst::Op::Xor:
    return Ty->isDouble() ? static_cast<Value *>(Ctx.getConstantFP(0.0))
                          : static_cast<Value *>(Ctx.getConstantInt(Ty, 0));
  case BinaryInst::Op::FAdd:
    return Ctx.getConstantFP(0.0);
  case BinaryInst::Op::Mul:
    return Ctx.getConstantInt(Ty, 1);
  case BinaryInst::Op::FMul:
    return Ctx.getConstantFP(1.0);
  case BinaryInst::Op::And:
    return Ctx.getConstantInt(Ty, -1);
  default:
    assert(false && "operator is not a supported reduction");
    return Ctx.getConstantInt(Ty, 0);
  }
}

ReductionManager::ReductionManager(SCCDAG &Dag) {
  nir::LoopStructure &L = Dag.getLoop();
  for (const auto &S : Dag.getSCCs()) {
    if (S->getAttribute() != SCC::Attribute::Reducible)
      continue;
    ReductionVariable R;
    R.TheSCC = S.get();
    R.Phi = S->getReductionPhi();
    R.Update = S->getReductionUpdate();
    R.Op = S->getReductionOp();
    for (unsigned K = 0; K < R.Phi->getNumIncoming(); ++K)
      if (!L.contains(R.Phi->getIncomingBlock(K)))
        R.InitialValue = R.Phi->getIncomingValue(K);
    assert(R.InitialValue && "reduction phi lacks an entry value");
    Reductions.push_back(R);
  }
}

const ReductionVariable *
ReductionManager::getReductionFor(const SCC *S) const {
  for (const auto &R : Reductions)
    if (R.TheSCC == S)
      return &R;
  return nullptr;
}

Value *ReductionManager::emitCombine(nir::IRBuilder &B, BinaryInst::Op Op,
                                     Value *A, Value *Bv) {
  return B.createBinary(Op, A, Bv);
}
