//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's architecture abstraction (AR): logical/physical core counts,
/// NUMA layout, and measured core-to-core communication latency — the
/// data noelle-arch collects (the paper measures these with hwloc plus
/// ping-pong microbenchmarks; we measure the host the same way).
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_ARCHITECTURE_H
#define NOELLE_ARCHITECTURE_H

#include <cstdint>
#include <string>
#include <vector>

namespace noelle {

/// A description of the machine the parallel runtime will use.
class Architecture {
public:
  /// Queries core counts and (optionally) measures latencies.
  /// \p MeasureLatencies runs short ping-pong probes between thread
  /// pairs; disable for fast construction in tests.
  explicit Architecture(bool MeasureLatencies = false);

  unsigned getNumLogicalCores() const { return LogicalCores; }
  unsigned getNumPhysicalCores() const { return PhysicalCores; }
  unsigned getNumNUMANodes() const { return NUMANodes; }

  /// Logical core count of the host, probed once and cached; the
  /// parallel runtime sizes its chunked-dispatch runner set from this.
  static unsigned hostLogicalCores();

  /// Measured one-way communication latency between two logical cores in
  /// nanoseconds; 0 when not measured.
  double getCoreToCoreLatencyNs(unsigned A, unsigned B) const;

  /// Serializes to the textual form noelle-arch writes.
  std::string str() const;

  /// Parses the noelle-arch output format.
  static Architecture fromString(const std::string &Text);

private:
  unsigned LogicalCores = 1;
  unsigned PhysicalCores = 1;
  unsigned NUMANodes = 1;
  std::vector<std::vector<double>> LatencyNs; ///< [a][b], may be empty
};

} // namespace noelle

#endif // NOELLE_ARCHITECTURE_H
