#include "noelle/MemDepProfiler.h"

#include "analysis/Dominators.h"
#include "ir/IDs.h"
#include "ir/Instructions.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace noelle;
using nir::BasicBlock;
using nir::Function;
using nir::Instruction;
using nir::Module;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

const char *kindName(ManifestedDep::Kind K) {
  switch (K) {
  case ManifestedDep::RAW:
    return "raw";
  case ManifestedDep::WAR:
    return "war";
  case ManifestedDep::WAW:
    return "waw";
  }
  return "raw";
}

bool kindFromName(const std::string &S, ManifestedDep::Kind &K) {
  if (S == "raw")
    K = ManifestedDep::RAW;
  else if (S == "war")
    K = ManifestedDep::WAR;
  else if (S == "waw")
    K = ManifestedDep::WAW;
  else
    return false;
  return true;
}

/// Splits "key=value"; returns false on malformed tokens.
bool splitKV(const std::string &Tok, std::string &Key, std::string &Val) {
  size_t Eq = Tok.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Key = Tok.substr(0, Eq);
  Val = Tok.substr(Eq + 1);
  return true;
}

} // namespace

std::string MemDepProfile::serialize() const {
  std::string Out = "memdep v1\n";
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "hash %016" PRIx64 "\n", ModuleHash);
  Out += Buf;
  for (const auto &[Header, S] : Loops) {
    std::snprintf(Buf, sizeof(Buf),
                  "loop header=%" PRIu64 " invocations=%" PRIu64
                  " iterations=%" PRIu64 "\n",
                  Header, S.Invocations, S.Iterations);
    Out += Buf;
  }
  for (const ManifestedDep &D : Deps) {
    std::snprintf(Buf, sizeof(Buf),
                  "dep header=%" PRIu64 " src=%" PRIu64 " dst=%" PRIu64
                  " kind=%s\n",
                  D.HeaderID, D.SrcID, D.DstID, kindName(D.K));
    Out += Buf;
  }
  return Out;
}

bool MemDepProfile::deserialize(const std::string &Text, MemDepProfile &Out,
                                std::string &Err) {
  Out = MemDepProfile();
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  bool SawHeader = false, SawHash = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Word;
    LS >> Word;
    if (Word == "memdep") {
      std::string Version;
      LS >> Version;
      if (Version != "v1") {
        Err = "line " + std::to_string(LineNo) +
              ": unsupported memdep version '" + Version + "'";
        return false;
      }
      SawHeader = true;
      continue;
    }
    if (Word == "hash") {
      std::string Hex;
      LS >> Hex;
      uint64_t H = 0;
      if (Hex.empty() || std::sscanf(Hex.c_str(), "%" SCNx64, &H) != 1) {
        Err = "line " + std::to_string(LineNo) + ": malformed hash";
        return false;
      }
      Out.ModuleHash = H;
      SawHash = true;
      continue;
    }
    if (Word != "loop" && Word != "dep") {
      Err = "line " + std::to_string(LineNo) + ": unknown record '" + Word +
            "'";
      return false;
    }
    uint64_t Header = 0, Src = 0, Dst = 0, Invocations = 0, Iterations = 0;
    ManifestedDep::Kind K = ManifestedDep::RAW;
    bool SawHdr = false, SawSrc = false, SawDst = false, SawKind = false;
    std::string Tok;
    while (LS >> Tok) {
      std::string Key, Val;
      if (!splitKV(Tok, Key, Val)) {
        Err = "line " + std::to_string(LineNo) + ": malformed token '" +
              Tok + "'";
        return false;
      }
      try {
        if (Key == "header") {
          Header = std::stoull(Val);
          SawHdr = true;
        } else if (Key == "invocations") {
          Invocations = std::stoull(Val);
        } else if (Key == "iterations") {
          Iterations = std::stoull(Val);
        } else if (Key == "src") {
          Src = std::stoull(Val);
          SawSrc = true;
        } else if (Key == "dst") {
          Dst = std::stoull(Val);
          SawDst = true;
        } else if (Key == "kind") {
          if (!kindFromName(Val, K)) {
            Err = "line " + std::to_string(LineNo) + ": unknown dep kind '" +
                  Val + "'";
            return false;
          }
          SawKind = true;
        } else {
          Err = "line " + std::to_string(LineNo) + ": unknown key '" + Key +
                "'";
          return false;
        }
      } catch (const std::exception &) {
        Err = "line " + std::to_string(LineNo) + ": bad number in '" + Tok +
              "'";
        return false;
      }
    }
    if (!SawHdr) {
      Err = "line " + std::to_string(LineNo) + ": record missing header=";
      return false;
    }
    if (Word == "loop") {
      Out.Loops[Header].Invocations += Invocations;
      Out.Loops[Header].Iterations += Iterations;
    } else {
      if (!SawSrc || !SawDst || !SawKind) {
        Err = "line " + std::to_string(LineNo) +
              ": dep record missing src/dst/kind";
        return false;
      }
      ManifestedDep D;
      D.HeaderID = Header;
      D.SrcID = Src;
      D.DstID = Dst;
      D.K = K;
      Out.recordDep(D);
    }
  }
  if (!SawHeader) {
    Err = "missing 'memdep v1' header";
    return false;
  }
  if (!SawHash) {
    Err = "missing 'hash' record";
    return false;
  }
  return true;
}

void MemDepProfile::embed(nir::Module &M) {
  ModuleHash = M.getContentHash();
  M.setModuleMetadata(MemDepEmbedKey, serialize());
}

bool MemDepProfile::fromModule(nir::Module &M, MemDepProfile &Out,
                               std::string &Err, bool RequireHashMatch) {
  if (!M.hasModuleMetadata(MemDepEmbedKey)) {
    Err = "module carries no embedded memory-dependence profile";
    return false;
  }
  if (!deserialize(M.getModuleMetadata(MemDepEmbedKey), Out, Err))
    return false;
  if (RequireHashMatch && Out.ModuleHash != M.getContentHash()) {
    Err = "embedded memory-dependence profile is bound to a different "
          "module (content hash mismatch)";
    return false;
  }
  return true;
}

void MemDepProfile::clean(nir::Module &M) {
  M.removeModuleMetadata(MemDepEmbedKey);
}

bool MemDepProfile::isEmbedded(const nir::Module &M) {
  return M.hasModuleMetadata(MemDepEmbedKey);
}

//===----------------------------------------------------------------------===//
// Observer
//===----------------------------------------------------------------------===//

namespace {

uint64_t instIdOf(const Instruction *I) {
  std::string S = I->getMetadata(nir::InstIDKey);
  if (S.empty())
    return 0;
  uint64_t N = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return 0;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  return N;
}

} // namespace

struct MemDepProfiler::Impl {
  /// One natural loop of the profiled module.
  struct LoopRec {
    nir::LoopStructure *L = nullptr;
    const Function *F = nullptr;
    uint64_t HeaderID = 0;
  };

  /// A dynamic context frame: either an active loop invocation or a call
  /// marker separating caller loops from callee blocks. Returns produce
  /// no event, so frames are unwound lazily at the next block event.
  struct Frame {
    enum Tag : uint8_t { CallMarker, LoopActivation } T = CallMarker;
    const Function *Callee = nullptr; ///< CallMarker
    LoopRec *L = nullptr;             ///< LoopActivation
    uint64_t InvocStart = 0;          ///< clock at loop entry
    uint64_t IterStart = 0;           ///< clock at current iteration start
  };

  /// Shadow state of one byte of memory.
  struct ByteState {
    uint64_t WId = 0, WT = 0; ///< last writer and its clock
    uint64_t RId = 0, RT = 0; ///< last reader and its clock
  };

  MemDepProfile Profile;
  std::vector<Frame> Stack;
  std::unordered_map<uint64_t, ByteState> Shadow;
  uint64_t Now = 0; ///< memory-access clock (monotone)

  // Static module indexes, built once at construction.
  std::vector<std::unique_ptr<nir::DominatorTree>> DTs;
  std::vector<std::unique_ptr<nir::LoopInfo>> LIs;
  std::vector<std::unique_ptr<LoopRec>> LoopStorage;
  std::unordered_map<const BasicBlock *, const Function *> FnOf;
  std::unordered_map<const BasicBlock *, LoopRec *> HeaderOf;
  std::unordered_map<const Instruction *, uint64_t> IdCache;

  explicit Impl(Module &M) {
    for (const auto &FPtr : M.getFunctions()) {
      Function *F = FPtr.get();
      if (F->isDeclaration())
        continue;
      for (const auto &BB : F->getBlocks())
        FnOf[BB.get()] = F;
      auto DT = std::make_unique<nir::DominatorTree>(*F);
      auto LI = std::make_unique<nir::LoopInfo>(*F, *DT);
      for (nir::LoopStructure *L : LI->getLoopsInPreorder()) {
        auto Rec = std::make_unique<LoopRec>();
        Rec->L = L;
        Rec->F = F;
        if (!L->getHeader()->getInstList().empty())
          Rec->HeaderID =
              instIdOf(L->getHeader()->getInstList().front().get());
        HeaderOf[L->getHeader()] = Rec.get();
        LoopStorage.push_back(std::move(Rec));
      }
      DTs.push_back(std::move(DT));
      LIs.push_back(std::move(LI));
    }
  }

  uint64_t idOf(const Instruction *I) {
    auto It = IdCache.find(I);
    if (It != IdCache.end())
      return It->second;
    uint64_t Id = instIdOf(I);
    IdCache.emplace(I, Id);
    return Id;
  }

  /// Unwinds frames invalidated by control arriving at a block of \p F:
  /// loop activations whose loop no longer contains the block, and call
  /// markers of calls that have returned.
  void unwind(const BasicBlock *BB, const Function *F) {
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.T == Frame::CallMarker) {
        if (Top.Callee == F)
          break; // still inside this call
        Stack.pop_back();
        continue;
      }
      if (Top.L->F == F) {
        if (Top.L->L->contains(const_cast<BasicBlock *>(BB)))
          break; // still iterating this loop
        Stack.pop_back();
        continue;
      }
      Stack.pop_back(); // loop of a function we returned from
    }
  }

  void onBlock(const BasicBlock *BB) {
    auto FIt = FnOf.find(BB);
    if (FIt == FnOf.end())
      return;
    const Function *F = FIt->second;
    unwind(BB, F);

    auto HIt = HeaderOf.find(BB);
    if (HIt == HeaderOf.end())
      return;
    LoopRec *L = HIt->second;
    if (!Stack.empty() && Stack.back().T == Frame::LoopActivation &&
        Stack.back().L == L) {
      // Back edge: a new iteration of the active invocation. The clock
      // pre-increments, so the iteration owns accesses from Now+1 on —
      // using Now would disown the previous iteration's final access
      // (recordCarried's SrcT < IterStart must admit it as a source).
      Stack.back().IterStart = Now + 1;
      Profile.recordLoopIteration(L->HeaderID);
      return;
    }
    Frame Fr;
    Fr.T = Frame::LoopActivation;
    Fr.L = L;
    // Same boundary convention: the invocation owns accesses from Now+1,
    // so the previous invocation's final access (clock == Now) is not
    // misattributed to this one by recordCarried's SrcT >= InvocStart.
    Fr.InvocStart = Now + 1;
    Fr.IterStart = Now + 1;
    Stack.push_back(Fr);
    Profile.recordLoopEntry(L->HeaderID);
  }

  void onCall(const Function *Callee) {
    Frame Fr;
    Fr.T = Frame::CallMarker;
    Fr.Callee = Callee;
    Stack.push_back(Fr);
  }

  /// Records a carried dependence for every active loop whose current
  /// iteration began after the earlier access (same invocation, earlier
  /// iteration). Loops below a call marker stay active: a dependence
  /// carried through a callee is still carried by the caller's loop.
  void recordCarried(uint64_t SrcId, uint64_t SrcT, uint64_t DstId,
                     ManifestedDep::Kind K) {
    if (!SrcId || !DstId)
      return;
    for (const Frame &Fr : Stack) {
      if (Fr.T != Frame::LoopActivation || !Fr.L->HeaderID)
        continue;
      if (SrcT >= Fr.InvocStart && SrcT < Fr.IterStart) {
        ManifestedDep D;
        D.HeaderID = Fr.L->HeaderID;
        D.SrcID = SrcId;
        D.DstID = DstId;
        D.K = K;
        Profile.recordDep(D);
      }
    }
  }

  void onLoad(const Instruction *I, uint64_t Addr, unsigned Bytes) {
    ++Now;
    const uint64_t Id = I ? idOf(I) : 0;
    for (unsigned B = 0; B != Bytes; ++B) {
      ByteState &S = Shadow[Addr + B];
      if (S.WT)
        recordCarried(S.WId, S.WT, Id, ManifestedDep::RAW);
      S.RId = Id;
      S.RT = Now;
    }
  }

  void onStore(const Instruction *I, uint64_t Addr, unsigned Bytes) {
    ++Now;
    const uint64_t Id = I ? idOf(I) : 0;
    for (unsigned B = 0; B != Bytes; ++B) {
      ByteState &S = Shadow[Addr + B];
      if (S.RT)
        recordCarried(S.RId, S.RT, Id, ManifestedDep::WAR);
      if (S.WT)
        recordCarried(S.WId, S.WT, Id, ManifestedDep::WAW);
      S.WId = Id;
      S.WT = Now;
    }
  }
};

MemDepProfiler::MemDepProfiler(Module &M) : P(std::make_unique<Impl>(M)) {}
MemDepProfiler::~MemDepProfiler() = default;

void MemDepProfiler::onBlockExecuted(const BasicBlock *BB) {
  P->onBlock(BB);
}
void MemDepProfiler::onCallExecuted(const nir::CallInst *,
                                    const Function *Callee) {
  P->onCall(Callee);
}
void MemDepProfiler::onLoadExecuted(const Instruction *I, uint64_t Addr,
                                    unsigned Bytes) {
  P->onLoad(I, Addr, Bytes);
}
void MemDepProfiler::onStoreExecuted(const Instruction *I, uint64_t Addr,
                                     unsigned Bytes) {
  P->onStore(I, Addr, Bytes);
}

MemDepProfile MemDepProfiler::takeProfile() {
  return std::move(P->Profile);
}

MemDepProfile noelle::profileMemDeps(Module &M) {
  if (nir::buildInstructionIndex(M).empty())
    nir::assignDeterministicIDs(M);
  MemDepProfiler Prof(M);
  nir::ExecutionEngine Engine(M);
  Engine.setObserver(&Prof);
  Engine.runMain();
  Engine.setObserver(nullptr);
  return Prof.takeProfile();
}
