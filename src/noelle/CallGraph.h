//===----------------------------------------------------------------------===//
///
/// \file
/// NOELLE's complete program call graph (CG): unlike LLVM's, indirect
/// calls are resolved to their possible callees via points-to analysis,
/// so a *missing* edge proves a function cannot invoke another — the
/// property DeadFunctionEliminator relies on. Edges are may/must and
/// carry sub-edges naming the exact call instructions.
///
//===----------------------------------------------------------------------===//

#ifndef NOELLE_CALLGRAPH_H
#define NOELLE_CALLGRAPH_H

#include "analysis/AliasAnalysis.h"
#include "ir/Module.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace noelle {

using nir::CallInst;
using nir::Function;
using nir::Module;

/// One caller->callee relation, with the call sites inducing it.
struct CallGraphEdge {
  Function *Caller = nullptr;
  Function *Callee = nullptr;
  bool IsMust = false; ///< proven to hold (direct call); may otherwise
  std::vector<const CallInst *> CallSites; ///< sub-edges
};

/// The complete call graph of a module.
class CallGraph {
public:
  /// Builds the graph; indirect callees come from \p AA (Andersen).
  CallGraph(Module &M, nir::AndersenAliasAnalysis &AA);

  const std::vector<std::unique_ptr<CallGraphEdge>> &getEdges() const {
    return Edges;
  }

  /// Out-edges of \p F (functions it may invoke).
  std::vector<CallGraphEdge *> getCallees(Function *F) const;

  /// In-edges of \p F (functions that may invoke it).
  std::vector<CallGraphEdge *> getCallers(Function *F) const;

  /// True if an edge Caller -> Callee exists.
  bool mayInvoke(Function *Caller, Function *Callee) const;

  /// Functions transitively reachable from \p Roots (inclusive).
  std::set<Function *> getReachableFrom(const std::vector<Function *> &Roots) const;

  /// Disconnected islands of the undirected call graph — the ISL
  /// abstraction applied to the CG.
  std::vector<std::set<Function *>> getIslands() const;

private:
  Module &M;
  std::vector<std::unique_ptr<CallGraphEdge>> Edges;
  std::map<Function *, std::vector<CallGraphEdge *>> Out, In;
};

} // namespace noelle

#endif // NOELLE_CALLGRAPH_H
