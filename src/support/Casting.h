//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in RTTI: isa<>, cast<>, dyn_cast<> built on classof().
/// Classes participate by exposing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_CASTING_H
#define SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace nir {

/// Returns true if \p Val is an instance of \p To (or a subclass).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates null pointers (returns false).
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates null pointers (propagates null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace nir

#endif // SUPPORT_CASTING_H
