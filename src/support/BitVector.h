//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector with set-algebra operations, used by the data-flow
/// engine (DFE) for bitvector-based analyses.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BITVECTOR_H
#define SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace nir {

/// Fixed-universe dense bit set. All binary operations require both
/// operands to share the same universe size.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(unsigned NumBits, bool Value = false)
      : NumBits(NumBits),
        Words((NumBits + WordBits - 1) / WordBits,
              Value ? ~uint64_t(0) : uint64_t(0)) {
    clearUnusedBits();
  }

  unsigned size() const { return NumBits; }

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] |= uint64_t(1) << (Idx % WordBits);
  }

  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] &= ~(uint64_t(1) << (Idx % WordBits));
  }

  void clear() {
    for (auto &W : Words)
      W = 0;
  }

  /// Number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (auto W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (auto W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// In-place union. Returns true if this changed.
  bool unionWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// In-place intersection. Returns true if this changed.
  bool intersectWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// In-place difference (this &= ~RHS). Returns true if this changed.
  bool subtract(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Calls \p Fn for each set bit index, in increasing order.
  template <typename CallableT> void forEachSetBit(CallableT Fn) const {
    for (size_t WI = 0, WE = Words.size(); WI != WE; ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(static_cast<unsigned>(WI * WordBits + Bit));
        W &= W - 1;
      }
    }
  }

private:
  static constexpr unsigned WordBits = 64;

  void clearUnusedBits() {
    unsigned Rem = NumBits % WordBits;
    if (Rem && !Words.empty())
      Words.back() &= (uint64_t(1) << Rem) - 1;
  }

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace nir

#endif // SUPPORT_BITVECTOR_H
